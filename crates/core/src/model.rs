//! The assembled KVEC model.

use crate::classifier::Classifier;
use crate::ectl::Ectl;
use crate::kvrl::KvrlEncoder;
use crate::mask::{build_mask, DynamicMask};
use crate::KvecConfig;
use kvec_autograd::Var;
use kvec_data::TangledSequence;
use kvec_nn::{AttentionTrace, ParamId, ParamStore, Session};
use kvec_tensor::KvecRng;

/// KVRL + ECTL + classifier, sharing one [`ParamStore`].
///
/// `Clone` replicates the full model (parameters included) — the
/// data-parallel training loop clones one replica per worker so each can
/// accumulate gradients privately before the ordered reduction.
#[derive(Clone)]
pub struct KvecModel {
    /// The model configuration.
    pub cfg: KvecConfig,
    /// Owner of every trainable tensor.
    pub store: ParamStore,
    /// The representation module.
    pub encoder: KvrlEncoder,
    /// The halting policy + value baseline.
    pub ectl: Ectl,
    /// The classification head.
    pub classifier: Classifier,
}

/// Everything the teacher-forced full forward produces for one tangled
/// sequence.
pub struct StreamForward<'s> {
    /// Refined item embeddings `E` (`T x d`).
    pub e: Var<'s>,
    /// The dynamic mask with edge classification.
    pub dyn_mask: DynamicMask,
    /// Per-block attention weights.
    pub traces: Vec<AttentionTrace>,
}

impl KvecModel {
    /// Builds a model with freshly initialized parameters.
    pub fn new(cfg: &KvecConfig, rng: &mut KvecRng) -> Self {
        cfg.validate();
        let mut store = ParamStore::new();
        let encoder = KvrlEncoder::new(&mut store, cfg, rng);
        let ectl = Ectl::new(&mut store, cfg, rng);
        let classifier = Classifier::new(&mut store, cfg, rng);
        Self {
            cfg: cfg.clone(),
            store,
            encoder,
            ectl,
            classifier,
        }
    }

    /// Parameter ids of `theta` — everything Algorithm 1 updates at the
    /// model learning rate: KVRL, the classifier and the halting policy.
    pub fn model_param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.encoder.param_ids();
        ids.extend(self.classifier.param_ids());
        ids.extend(self.ectl.policy_param_ids());
        ids
    }

    /// Parameter ids of `theta_b` — the value baseline, updated at its own
    /// learning rate.
    pub fn baseline_param_ids(&self) -> Vec<ParamId> {
        self.ectl.baseline_param_ids()
    }

    /// Total trainable scalar count.
    pub fn num_parameters(&self) -> usize {
        self.store.total_elements()
    }

    /// Writes the trained weights as a JSON checkpoint.
    pub fn save_weights(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.save(path)
    }

    /// Restores weights written by [`KvecModel::save_weights`] into a model
    /// built from the *same configuration* (names, order and shapes must
    /// match).
    pub fn load_weights(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.load(path)
    }

    /// Teacher-forced full forward over a tangled stream: builds the
    /// dynamic mask and runs the attention stack once for all arrived
    /// items. By causality of the mask, row `t` of `E` equals the
    /// representation item `t` had at its arrival time, so per-step
    /// fusion/halting can be simulated afterwards.
    pub fn encode_stream<'s>(
        &self,
        sess: &'s Session,
        tangled: &TangledSequence,
        dropout_rng: Option<&mut KvecRng>,
    ) -> StreamForward<'s> {
        assert!(!tangled.is_empty(), "cannot encode an empty stream");
        let dyn_mask = build_mask(
            tangled,
            self.cfg.session_field,
            self.cfg.use_key_correlation,
            self.cfg.use_value_correlation,
        );
        let indices = self.encoder.input.indices_for(tangled);
        let (e, traces) =
            self.encoder
                .encode(sess, &self.store, &indices, &dyn_mask.mask, dropout_rng);
        StreamForward {
            e,
            dyn_mask,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvec_data::{Item, Key, ValueSchema};

    fn schema() -> ValueSchema {
        ValueSchema::new(vec!["dir".into(), "size".into()], vec![2, 4], 0)
    }

    fn sample() -> TangledSequence {
        let items = vec![
            Item::new(Key(1), vec![0, 1], 0),
            Item::new(Key(2), vec![0, 2], 1),
            Item::new(Key(1), vec![1, 3], 2),
        ];
        TangledSequence::new(items, vec![(Key(1), 0), (Key(2), 1)])
    }

    #[test]
    fn construction_and_param_groups() {
        let cfg = KvecConfig::tiny(&schema(), 2);
        let mut rng = KvecRng::seed_from_u64(1);
        let model = KvecModel::new(&cfg, &mut rng);
        assert!(model.num_parameters() > 1000);

        let theta: std::collections::BTreeSet<_> = model.model_param_ids().into_iter().collect();
        let theta_b: std::collections::BTreeSet<_> =
            model.baseline_param_ids().into_iter().collect();
        assert!(theta.is_disjoint(&theta_b));
        // Together they cover the whole store.
        assert_eq!(theta.len() + theta_b.len(), model.store.len());
    }

    #[test]
    fn encode_stream_produces_consistent_shapes() {
        let cfg = KvecConfig::tiny(&schema(), 2);
        let mut rng = KvecRng::seed_from_u64(2);
        let model = KvecModel::new(&cfg, &mut rng);
        let sess = Session::new();
        let fwd = model.encode_stream(&sess, &sample(), None);
        assert_eq!(fwd.e.shape(), (3, cfg.d_model));
        assert_eq!(fwd.dyn_mask.mask.shape(), (3, 3));
        assert_eq!(fwd.traces.len(), cfg.n_blocks);
    }

    #[test]
    fn checkpoint_round_trip_preserves_predictions() {
        let cfg = KvecConfig::tiny(&schema(), 2);
        let mut rng = KvecRng::seed_from_u64(7);
        let model = KvecModel::new(&cfg, &mut rng);
        let tangled = sample();
        let before = crate::eval::evaluate_scenario(&model, &tangled);

        let dir = std::env::temp_dir().join("kvec-model-ckpt");
        let path = dir.join("weights.json");
        model.save_weights(&path).unwrap();

        let mut restored = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(999));
        restored.load_weights(&path).unwrap();
        let after = crate::eval::evaluate_scenario(&restored, &tangled);
        std::fs::remove_dir_all(dir).ok();

        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.pred, b.pred);
            assert_eq!(a.n_k, b.n_k);
        }
    }

    #[test]
    fn same_seed_same_model() {
        let cfg = KvecConfig::tiny(&schema(), 2);
        let a = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(5));
        let b = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(5));
        for (ia, ib) in a.store.ids().into_iter().zip(b.store.ids()) {
            assert_eq!(a.store.value(ia), b.store.value(ib));
        }
    }
}
