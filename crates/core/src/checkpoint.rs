//! Trainer checkpoint payload: the JSON state inside the crash-safe
//! container (`kvec_nn::checkpoint`).
//!
//! A checkpoint captures **everything** the training trajectory depends
//! on — parameter values, both Adam optimizers' moments and step counts,
//! the epoch/step counters (warmup gating reads `epochs_done`), the
//! divergence-watchdog counters, and the full [`KvecRng`] state — so that
//! `Trainer::resume` continues bit-identically to a run that was never
//! interrupted (see `tests/fault_tolerance.rs` for the enforced contract).
//!
//! The watchdog's in-memory rollback snapshot is deliberately *not*
//! serialized: after a resume the checkpoint itself is the last good
//! state, and the first good post-resume step re-establishes a snapshot.

use kvec_json::{FromJson, Json, ToJson};
use kvec_nn::checkpoint::CheckpointError;
use kvec_nn::AdamState;

/// Identifies the payload kind inside the generic container, so a trainer
/// checkpoint and (say) a future dataset snapshot cannot be confused.
pub const PAYLOAD_FORMAT: &str = "kvec-trainer-state";

/// The deserialized trainer checkpoint payload.
#[derive(Debug)]
pub struct TrainerState {
    /// Parameter values in `ParamStore` layout (`[name, tensor]` pairs).
    pub params: Json,
    /// Model-group Adam state (`theta`).
    pub opt_model: AdamState,
    /// Baseline-group Adam state (`theta_b`).
    pub opt_baseline: AdamState,
    /// Completed epochs (gates the policy warmup phase).
    pub epochs_done: usize,
    /// Optimizer-step attempts so far (good and skipped).
    pub step: u64,
    /// Applied (good) optimizer steps so far.
    pub good_steps: u64,
    /// Consecutive bad steps at capture time (0 at any healthy boundary).
    pub consecutive_bad: usize,
    /// Gradient-norm EMA the spike detector compares against.
    pub grad_norm_ema: Option<f32>,
    /// Full xoshiro256++ state of the training RNG.
    pub rng_state: [u64; 4],
}

/// Serializes a trainer state as the compact-JSON checkpoint payload.
pub fn encode_state(state: &TrainerState) -> String {
    let rng: Vec<u64> = state.rng_state.to_vec();
    Json::obj([
        ("format", PAYLOAD_FORMAT.to_json()),
        ("params", state.params.clone()),
        ("opt_model", state.opt_model.to_json()),
        ("opt_baseline", state.opt_baseline.to_json()),
        ("epochs_done", state.epochs_done.to_json()),
        ("step", state.step.to_json()),
        ("good_steps", state.good_steps.to_json()),
        ("consecutive_bad", state.consecutive_bad.to_json()),
        ("grad_norm_ema", state.grad_norm_ema.to_json()),
        ("rng", rng.to_json()),
    ])
    .dump()
}

/// Parses a payload produced by [`encode_state`]. The container layer has
/// already verified the checksum, so any failure here means the writer and
/// reader disagree on the schema — reported as an invalid payload, never a
/// panic.
pub fn decode_state(payload: &[u8]) -> Result<TrainerState, CheckpointError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| CheckpointError::InvalidPayload("payload is not UTF-8".into()))?;
    let j = Json::parse(text)
        .map_err(|e| CheckpointError::InvalidPayload(format!("payload is not JSON: {e}")))?;
    let get = |name: &str| {
        j.get(name)
            .map_err(|e| CheckpointError::InvalidPayload(e.to_string()))
    };
    let inv = |e: kvec_json::JsonError| CheckpointError::InvalidPayload(e.to_string());

    let format = String::from_json(get("format")?).map_err(inv)?;
    if format != PAYLOAD_FORMAT {
        return Err(CheckpointError::InvalidPayload(format!(
            "payload format is `{format}`, expected `{PAYLOAD_FORMAT}`"
        )));
    }
    let rng_vec = Vec::<u64>::from_json(get("rng")?).map_err(inv)?;
    let rng_state: [u64; 4] = rng_vec.as_slice().try_into().map_err(|_| {
        CheckpointError::InvalidPayload(format!(
            "rng state has {} words, expected 4",
            rng_vec.len()
        ))
    })?;
    Ok(TrainerState {
        params: get("params")?.clone(),
        opt_model: AdamState::from_json(get("opt_model")?).map_err(inv)?,
        opt_baseline: AdamState::from_json(get("opt_baseline")?).map_err(inv)?,
        epochs_done: usize::from_json(get("epochs_done")?).map_err(inv)?,
        step: u64::from_json(get("step")?).map_err(inv)?,
        good_steps: u64::from_json(get("good_steps")?).map_err(inv)?,
        consecutive_bad: usize::from_json(get("consecutive_bad")?).map_err(inv)?,
        grad_norm_ema: Option::<f32>::from_json(get("grad_norm_ema")?).map_err(inv)?,
        rng_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrainerState {
        TrainerState {
            params: Json::arr([]),
            opt_model: AdamState {
                t: 7,
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                m: vec![],
                v: vec![],
            },
            opt_baseline: AdamState {
                t: 7,
                lr: 0.02,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                m: vec![],
                v: vec![],
            },
            epochs_done: 3,
            step: 41,
            good_steps: 39,
            consecutive_bad: 0,
            grad_norm_ema: Some(1.25),
            rng_state: [u64::MAX, 2, 3, 4],
        }
    }

    #[test]
    fn payload_round_trips_exactly() {
        let state = sample_state();
        let text = encode_state(&state);
        let back = decode_state(text.as_bytes()).unwrap();
        assert_eq!(back.opt_model, state.opt_model);
        assert_eq!(back.opt_baseline, state.opt_baseline);
        assert_eq!(back.epochs_done, state.epochs_done);
        assert_eq!(back.step, state.step);
        assert_eq!(back.good_steps, state.good_steps);
        assert_eq!(back.grad_norm_ema, state.grad_norm_ema);
        assert_eq!(back.rng_state, state.rng_state);
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let mut state = sample_state();
        state.params = Json::arr([]);
        let text = encode_state(&state).replace(PAYLOAD_FORMAT, "something-else");
        let err = decode_state(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("something-else"), "{err}");
    }

    #[test]
    fn short_rng_state_is_rejected() {
        let state = sample_state();
        let text = encode_state(&state).replace("[18446744073709551615,2,3,4]", "[1,2]");
        assert!(decode_state(text.as_bytes()).is_err());
    }
}
