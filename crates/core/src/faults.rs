//! Deterministic fault injection for the training runtime.
//!
//! Everything here exists to *test* the fault-tolerance machinery — the
//! divergence watchdog, checkpoint rollback and crash/resume paths — under
//! reproducible, seeded faults (`tests/fault_tolerance.rs` drives it
//! end-to-end). Nothing in this module runs unless an injector is
//! explicitly attached to a trainer or a helper is called on a file.
//!
//! Three fault families:
//!
//! - **kill-at-step-N** — the trainer returns `TrainError::Killed` just
//!   before applying optimizer step `N`, simulating a hard crash at an
//!   arbitrary point of an epoch;
//! - **gradient poisoning** — accumulated gradients are overwritten with
//!   NaN at chosen (or seeded-random) steps, the failure mode REINFORCE
//!   training actually exhibits;
//! - **checkpoint corruption** — byte flips and truncation applied to a
//!   checkpoint file on disk, which the container checksum must detect.

use kvec_nn::ParamStore;
use kvec_tensor::KvecRng;
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// A seeded injector of training-time faults. Attach to a trainer with
/// `Trainer::set_fault_injector`; steps are counted as optimizer-step
/// attempts (one per scenario serially, one per worker group in the
/// data-parallel epoch).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    kill_at_step: Option<u64>,
    poison_steps: BTreeSet<u64>,
    poison_prob: f32,
    rng: KvecRng,
}

impl FaultInjector {
    /// Creates an injector with no faults armed; the seed drives the
    /// probabilistic modes and the choice of poisoned entries.
    pub fn new(seed: u64) -> Self {
        Self {
            kill_at_step: None,
            poison_steps: BTreeSet::new(),
            poison_prob: 0.0,
            rng: KvecRng::seed_from_u64(seed),
        }
    }

    /// Arms a simulated crash immediately before optimizer step `n` is
    /// applied (0-based: `kill_at_step(0)` dies before any update).
    pub fn kill_at_step(mut self, n: u64) -> Self {
        self.kill_at_step = Some(n);
        self
    }

    /// Arms NaN gradient poisoning at exactly the given steps.
    pub fn poison_grads_at(mut self, steps: impl IntoIterator<Item = u64>) -> Self {
        self.poison_steps.extend(steps);
        self
    }

    /// Arms NaN gradient poisoning at every step independently with
    /// probability `p` (seeded, so a given injector seed reproduces the
    /// same fault pattern).
    pub fn poison_grads_with_prob(mut self, p: f32) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.poison_prob = p;
        self
    }

    /// Whether the armed crash fires at `step`.
    pub fn should_kill(&self, step: u64) -> bool {
        self.kill_at_step == Some(step)
    }

    /// Applies gradient poisoning for `step` if armed: a handful of
    /// seeded-random gradient entries (at least one per parameter group
    /// region) are set to NaN. Returns whether poisoning happened.
    pub fn poison(&mut self, store: &mut ParamStore, step: u64) -> bool {
        let fire = self.poison_steps.contains(&step)
            || (self.poison_prob > 0.0 && self.rng.bernoulli(self.poison_prob));
        if !fire {
            return false;
        }
        // Poison one random entry of a few random parameters — enough to
        // make any finiteness check that misses a tensor flaky-free while
        // staying cheap.
        let ids = store.ids();
        for _ in 0..3 {
            let id = ids[self.rng.below(ids.len())];
            let g = store.grad(id).clone();
            let mut poisoned = g;
            let n = poisoned.len();
            if n == 0 {
                continue;
            }
            poisoned.data_mut()[self.rng.below(n)] = f32::NAN;
            // Overwrite by accumulate: NaN + anything = NaN.
            store.scale_grad(id, 0.0);
            store.accumulate_grad(id, &poisoned);
        }
        true
    }
}

/// A deterministic fault plan for the *serving* path (`kvec-serve`), the
/// fourth fault family: where [`FaultInjector`] attacks the training
/// loop, `ServeChaos` attacks the sharded streaming service. The plan is
/// pure data — the service interprets it at precisely defined points of
/// each shard worker's arrival loop, so a given plan reproduces the same
/// fault schedule on every run:
///
/// - **worker kill** — the shard worker dies *between* arrivals (after
///   completing local arrival `n-1`, before dequeuing arrival `n`),
///   exercising supervisor respawn + journal replay with no item in
///   flight;
/// - **poison arrival** — processing local arrival `n` panics mid-feed,
///   exercising quarantine (the arrival is written to a replayable JSONL
///   file and excluded from replay);
/// - **queue stall** — the worker sleeps before processing local arrival
///   `n`, backing up its bounded queue so admission shedding and
///   overload deadlines fire;
/// - **deadline skew** — the shard's logical deadline clock is offset by
///   a constant, modeling a skewed clock forcing decisions earlier or
///   later than budgeted.
///
/// Arrival indices are 0-based and *local to the shard* (its processed
/// count), which keeps them stable under respawn: a replayed journal
/// restores the counter, so a fired fault does not re-fire.
#[derive(Debug, Clone, Default)]
pub struct ServeChaos {
    kills: BTreeSet<(usize, u64)>,
    poisons: BTreeSet<(usize, u64)>,
    stalls: std::collections::BTreeMap<(usize, u64), u64>,
    skews: std::collections::BTreeMap<usize, i64>,
}

impl ServeChaos {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a worker kill on `shard` immediately before it dequeues its
    /// local arrival `n`.
    pub fn kill_worker_at(mut self, shard: usize, n: u64) -> Self {
        self.kills.insert((shard, n));
        self
    }

    /// Arms a mid-feed panic while `shard` processes its local arrival
    /// `n` (the arrival is quarantined, not replayed).
    pub fn poison_at(mut self, shard: usize, n: u64) -> Self {
        self.poisons.insert((shard, n));
        self
    }

    /// Arms a consumption stall: `shard` sleeps `millis` before
    /// processing its local arrival `n`.
    pub fn stall_at(mut self, shard: usize, n: u64, millis: u64) -> Self {
        self.stalls.insert((shard, n), millis);
        self
    }

    /// Skews `shard`'s logical deadline clock by `ticks` (positive =
    /// clock runs ahead, deadlines fire earlier).
    pub fn skew_deadline(mut self, shard: usize, ticks: i64) -> Self {
        self.skews.insert(shard, ticks);
        self
    }

    /// Whether a kill is armed for (`shard`, local arrival `n`).
    pub fn kill_fires(&self, shard: usize, n: u64) -> bool {
        self.kills.contains(&(shard, n))
    }

    /// Whether a poison panic is armed for (`shard`, local arrival `n`).
    pub fn poison_fires(&self, shard: usize, n: u64) -> bool {
        self.poisons.contains(&(shard, n))
    }

    /// The stall duration armed for (`shard`, local arrival `n`), if any.
    pub fn stall_millis(&self, shard: usize, n: u64) -> Option<u64> {
        self.stalls.get(&(shard, n)).copied()
    }

    /// The deadline-clock skew for `shard` (0 when unskewed).
    pub fn deadline_skew(&self, shard: usize) -> i64 {
        self.skews.get(&shard).copied().unwrap_or(0)
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.poisons.is_empty()
            && self.stalls.is_empty()
            && self.skews.is_empty()
    }
}

/// XORs the byte at `offset` with `mask` (mask must be non-zero so the
/// byte actually changes). For checkpoint-corruption tests.
pub fn flip_byte(path: impl AsRef<Path>, offset: usize, mask: u8) -> io::Result<()> {
    assert!(mask != 0, "mask 0 would leave the byte unchanged");
    let mut bytes = std::fs::read(&path)?;
    if offset >= bytes.len() {
        return Err(io::Error::other(format!(
            "offset {offset} out of range for {}-byte file",
            bytes.len()
        )));
    }
    bytes[offset] ^= mask;
    std::fs::write(&path, bytes)
}

/// Flips one seeded-random byte of the file with a seeded-random non-zero
/// mask; returns the offset chosen.
pub fn flip_random_byte(path: impl AsRef<Path>, rng: &mut KvecRng) -> io::Result<usize> {
    let len = std::fs::metadata(&path)?.len() as usize;
    if len == 0 {
        return Err(io::Error::other("cannot flip a byte of an empty file"));
    }
    let offset = rng.below(len);
    let mask = rng.range(1, 256) as u8;
    flip_byte(path, offset, mask)?;
    Ok(offset)
}

/// Truncates the file to its first `keep` bytes (a torn write).
pub fn truncate_file(path: impl AsRef<Path>, keep: usize) -> io::Result<()> {
    let bytes = std::fs::read(&path)?;
    let keep = keep.min(bytes.len());
    std::fs::write(&path, &bytes[..keep])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvec_tensor::Tensor;

    #[test]
    fn poison_hits_exactly_the_armed_steps() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(2, 2));
        let mut inj = FaultInjector::new(1).poison_grads_at([3, 5]);
        for step in 0..8u64 {
            store.zero_grads();
            store.accumulate_grad(id, &Tensor::ones(2, 2));
            let hit = inj.poison(&mut store, step);
            assert_eq!(hit, step == 3 || step == 5, "step {step}");
            assert_eq!(store.grad(id).has_non_finite(), hit, "step {step}");
        }
    }

    #[test]
    fn kill_fires_once_at_the_armed_step() {
        let inj = FaultInjector::new(2).kill_at_step(4);
        let kills: Vec<u64> = (0..10).filter(|&s| inj.should_kill(s)).collect();
        assert_eq!(kills, vec![4]);
    }

    #[test]
    fn probabilistic_poisoning_is_seed_deterministic() {
        let pattern = |seed: u64| -> Vec<bool> {
            let mut store = ParamStore::new();
            let id = store.add("w", Tensor::zeros(1, 4));
            let mut inj = FaultInjector::new(seed).poison_grads_with_prob(0.5);
            (0..32u64)
                .map(|s| {
                    store.zero_grads();
                    store.accumulate_grad(id, &Tensor::ones(1, 4));
                    inj.poison(&mut store, s)
                })
                .collect()
        };
        assert_eq!(pattern(7), pattern(7));
        assert_ne!(pattern(7), pattern(8), "different seeds, same pattern");
    }

    #[test]
    fn serve_chaos_plan_fires_exactly_where_armed() {
        let plan = ServeChaos::new()
            .kill_worker_at(0, 5)
            .poison_at(1, 3)
            .stall_at(2, 7, 40)
            .skew_deadline(1, -4);
        assert!(!plan.is_empty());
        assert!(plan.kill_fires(0, 5));
        assert!(!plan.kill_fires(0, 4) && !plan.kill_fires(1, 5));
        assert!(plan.poison_fires(1, 3));
        assert!(!plan.poison_fires(0, 3));
        assert_eq!(plan.stall_millis(2, 7), Some(40));
        assert_eq!(plan.stall_millis(2, 6), None);
        assert_eq!(plan.deadline_skew(1), -4);
        assert_eq!(plan.deadline_skew(0), 0);
        assert!(ServeChaos::new().is_empty());
    }

    #[test]
    fn file_helpers_change_and_truncate() {
        let dir = std::env::temp_dir().join("kvec-core-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, b"abcdef").unwrap();

        flip_byte(&path, 2, 0xFF).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_ne!(bytes, b"abcdef");
        assert_eq!(bytes.len(), 6);

        let mut rng = KvecRng::seed_from_u64(3);
        let off = flip_random_byte(&path, &mut rng).unwrap();
        assert!(off < 6);

        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }
}
