//! Input embedding (paper Section IV-B, "Input Embedding").
//!
//! Each item's preliminary embedding is the sum of
//! - a **value embedding** — one table per value field, summed (so items
//!   sharing a value field share that component);
//! - a **membership embedding** — the key, hashed into a fixed bucket
//!   space (test keys are unseen at training time, so a per-key table
//!   would leak; hashing gives every key a stable vector);
//! - a **relative-position embedding** — the item's index inside its own
//!   key's sequence, clipped;
//! - a **time embedding** — the item's global arrival order, bucketed.
//!
//! The membership and time-related components can be ablated (paper
//! Fig. 9).

use crate::KvecConfig;
use kvec_autograd::Var;
use kvec_data::{Key, TangledSequence};
use kvec_nn::{Embedding, ParamId, ParamStore, Session};
use kvec_tensor::KvecRng;
use std::collections::BTreeMap;

/// Precomputed lookup indices of one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemIndices {
    /// One code per value field.
    pub fields: Vec<usize>,
    /// Membership bucket of the key.
    pub membership: usize,
    /// Clipped relative position within the key's sequence.
    pub rel_pos: usize,
    /// Clipped global arrival-time bucket.
    pub time: usize,
}

/// The four-component input embedding module.
#[derive(Clone)]
pub struct InputEmbedding {
    field_tables: Vec<Embedding>,
    membership: Embedding,
    rel_pos: Embedding,
    time: Embedding,
    use_membership: bool,
    use_time: bool,
    membership_buckets: usize,
    max_rel_pos: usize,
    time_buckets: usize,
    time_bucket_size: usize,
}

/// Stable key-to-bucket hash (splitmix-style avalanche).
pub fn membership_bucket(key: Key, buckets: usize) -> usize {
    let mut x = key.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % buckets as u64) as usize
}

impl InputEmbedding {
    /// Creates the module's tables from the config.
    pub fn new(store: &mut ParamStore, cfg: &KvecConfig, rng: &mut KvecRng) -> Self {
        let d = cfg.d_model;
        let field_tables = cfg
            .field_cardinalities
            .iter()
            .enumerate()
            .map(|(f, &card)| Embedding::new(store, &format!("embed.field{f}"), card, d, rng))
            .collect();
        Self {
            field_tables,
            membership: Embedding::new(store, "embed.membership", cfg.membership_buckets, d, rng),
            rel_pos: Embedding::new(store, "embed.rel_pos", cfg.max_rel_pos, d, rng),
            time: Embedding::new(store, "embed.time", cfg.time_buckets, d, rng),
            use_membership: cfg.use_membership_embedding,
            use_time: cfg.use_time_embeddings,
            membership_buckets: cfg.membership_buckets,
            max_rel_pos: cfg.max_rel_pos,
            time_buckets: cfg.time_buckets,
            time_bucket_size: cfg.time_bucket_size,
        }
    }

    /// Computes lookup indices for every item of a tangled sequence.
    pub fn indices_for(&self, tangled: &TangledSequence) -> Vec<ItemIndices> {
        let mut per_key_count: BTreeMap<Key, usize> = BTreeMap::new();
        tangled
            .items
            .iter()
            .enumerate()
            .map(|(t, item)| {
                let pos = per_key_count.entry(item.key).or_insert(0);
                let rel_pos = (*pos).min(self.max_rel_pos - 1);
                *pos += 1;
                ItemIndices {
                    fields: item.value.iter().map(|&v| v as usize).collect(),
                    membership: membership_bucket(item.key, self.membership_buckets),
                    rel_pos,
                    time: (t / self.time_bucket_size).min(self.time_buckets - 1),
                }
            })
            .collect()
    }

    /// Computes the lookup indices of a single item arriving in a stream.
    ///
    /// `pos_in_key` is how many items of this key arrived before it;
    /// `global_t` its position in the tangled stream.
    pub fn indices_for_item(
        &self,
        key: Key,
        value: &[u32],
        pos_in_key: usize,
        global_t: usize,
    ) -> ItemIndices {
        ItemIndices {
            fields: value.iter().map(|&v| v as usize).collect(),
            membership: membership_bucket(key, self.membership_buckets),
            rel_pos: pos_in_key.min(self.max_rel_pos - 1),
            time: (global_t / self.time_bucket_size).min(self.time_buckets - 1),
        }
    }

    /// Embeds a batch of items, producing the dynamic embedding matrix
    /// `E_0` (`T x d`).
    pub fn forward<'s>(
        &self,
        sess: &'s Session,
        store: &ParamStore,
        items: &[ItemIndices],
    ) -> Var<'s> {
        assert!(!items.is_empty(), "cannot embed an empty batch");
        // Value embeddings: sum over fields.
        let mut total: Option<Var<'s>> = None;
        for (f, table) in self.field_tables.iter().enumerate() {
            let ids: Vec<usize> = items.iter().map(|it| it.fields[f]).collect();
            let e = table.forward(sess, store, &ids);
            total = Some(match total {
                Some(acc) => acc.add(e),
                None => e,
            });
        }
        let mut total = total.expect("at least one value field");

        if self.use_membership {
            let ids: Vec<usize> = items.iter().map(|it| it.membership).collect();
            total = total.add(self.membership.forward(sess, store, &ids));
        }
        if self.use_time {
            let pos_ids: Vec<usize> = items.iter().map(|it| it.rel_pos).collect();
            total = total.add(self.rel_pos.forward(sess, store, &pos_ids));
            let time_ids: Vec<usize> = items.iter().map(|it| it.time).collect();
            total = total.add(self.time.forward(sess, store, &time_ids));
        }
        total
    }

    /// Tape-free embedding of a single item (streaming inference).
    pub fn lookup_one(&self, store: &ParamStore, idx: &ItemIndices) -> kvec_tensor::Tensor {
        let mut total = self.field_tables[0].lookup(store, &idx.fields[..1]);
        for (f, table) in self.field_tables.iter().enumerate().skip(1) {
            total.add_assign(&table.lookup(store, &idx.fields[f..f + 1]));
        }
        if self.use_membership {
            total.add_assign(&self.membership.lookup(store, &[idx.membership]));
        }
        if self.use_time {
            total.add_assign(&self.rel_pos.lookup(store, &[idx.rel_pos]));
            total.add_assign(&self.time.lookup(store, &[idx.time]));
        }
        total
    }

    /// All trainable parameter ids of the module.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids: Vec<ParamId> = self
            .field_tables
            .iter()
            .flat_map(Embedding::param_ids)
            .collect();
        ids.extend(self.membership.param_ids());
        ids.extend(self.rel_pos.param_ids());
        ids.extend(self.time.param_ids());
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvec_data::{Item, ValueSchema};

    fn schema() -> ValueSchema {
        ValueSchema::new(vec!["dir".into(), "size".into()], vec![2, 4], 0)
    }

    fn cfg() -> KvecConfig {
        KvecConfig::tiny(&schema(), 2)
    }

    fn sample() -> TangledSequence {
        let items = vec![
            Item::new(Key(1), vec![0, 1], 0),
            Item::new(Key(2), vec![0, 1], 1),
            Item::new(Key(1), vec![1, 3], 2),
        ];
        TangledSequence::new(items, vec![(Key(1), 0), (Key(2), 1)])
    }

    #[test]
    fn membership_bucket_is_stable_and_bounded() {
        for k in 0..100u64 {
            let b = membership_bucket(Key(k), 16);
            assert!(b < 16);
            assert_eq!(b, membership_bucket(Key(k), 16));
        }
        // Buckets are actually spread out.
        let distinct: std::collections::BTreeSet<_> =
            (0..100u64).map(|k| membership_bucket(Key(k), 16)).collect();
        assert!(distinct.len() > 8);
    }

    #[test]
    fn indices_track_per_key_positions() {
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(1);
        let emb = InputEmbedding::new(&mut store, &cfg(), &mut rng);
        let idx = emb.indices_for(&sample());
        assert_eq!(idx[0].rel_pos, 0, "key 1 first item");
        assert_eq!(idx[1].rel_pos, 0, "key 2 first item");
        assert_eq!(idx[2].rel_pos, 1, "key 1 second item");
        assert_eq!(idx[0].fields, vec![0, 1]);
    }

    #[test]
    fn forward_shape_and_value_sharing() {
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(2);
        let c = cfg();
        let emb = InputEmbedding::new(&mut store, &c, &mut rng);
        let sess = Session::new();
        let idx = emb.indices_for(&sample());
        let e0 = emb.forward(&sess, &store, &idx);
        assert_eq!(e0.shape(), (3, c.d_model));
    }

    #[test]
    fn ablation_flags_change_the_embedding() {
        let t = sample();
        let embed_with = |use_mem: bool, use_time: bool| {
            let mut store = ParamStore::new();
            let mut rng = KvecRng::seed_from_u64(3);
            let mut c = cfg();
            c.use_membership_embedding = use_mem;
            c.use_time_embeddings = use_time;
            let emb = InputEmbedding::new(&mut store, &c, &mut rng);
            let sess = Session::new();
            let idx = emb.indices_for(&t);
            emb.forward(&sess, &store, &idx).value()
        };
        let full = embed_with(true, true);
        let no_mem = embed_with(false, true);
        let no_time = embed_with(true, false);
        assert!(!full.allclose(&no_mem, 1e-6));
        assert!(!full.allclose(&no_time, 1e-6));
    }

    #[test]
    fn same_inputs_same_rows_without_time() {
        // Items 0 and 1 share value fields; with membership and time
        // disabled their embeddings must coincide.
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(4);
        let mut c = cfg();
        c.use_membership_embedding = false;
        c.use_time_embeddings = false;
        let emb = InputEmbedding::new(&mut store, &c, &mut rng);
        let sess = Session::new();
        let idx = emb.indices_for(&sample());
        let e0 = emb.forward(&sess, &store, &idx).value();
        assert_eq!(e0.row(0), e0.row(1));
        assert_ne!(e0.row(0), e0.row(2));
    }

    #[test]
    fn streaming_indices_match_batch_indices() {
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(5);
        let emb = InputEmbedding::new(&mut store, &cfg(), &mut rng);
        let t = sample();
        let batch = emb.indices_for(&t);
        let mut per_key: BTreeMap<Key, usize> = BTreeMap::new();
        for (g, item) in t.items.iter().enumerate() {
            let pos = per_key.entry(item.key).or_insert(0);
            let single = emb.indices_for_item(item.key, &item.value, *pos, g);
            *pos += 1;
            assert_eq!(single, batch[g], "item {g}");
        }
    }

    #[test]
    fn lookup_one_matches_batch_forward() {
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(7);
        let emb = InputEmbedding::new(&mut store, &cfg(), &mut rng);
        let t = sample();
        let idx = emb.indices_for(&t);
        let sess = Session::new();
        let batch = emb.forward(&sess, &store, &idx).value();
        for (g, one) in idx.iter().enumerate() {
            let row = emb.lookup_one(&store, one);
            assert!(row.allclose(&batch.row_tensor(g), 1e-6), "row {g}");
        }
    }

    #[test]
    fn rel_pos_clips_at_table_end() {
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(6);
        let c = cfg();
        let emb = InputEmbedding::new(&mut store, &c, &mut rng);
        let idx = emb.indices_for_item(Key(1), &[0, 0], 10_000, 10_000_000);
        assert_eq!(idx.rel_pos, c.max_rel_pos - 1);
        assert_eq!(idx.time, c.time_buckets - 1);
    }
}
