//! The classification network (paper Section IV-D): one fully-connected
//! layer followed by softmax over the `C` classes.

use crate::KvecConfig;
use kvec_autograd::Var;
use kvec_nn::{Linear, ParamId, ParamStore, Session};
use kvec_tensor::{KvecRng, Tensor};

/// Linear-softmax classifier over sequence representations.
#[derive(Clone)]
pub struct Classifier {
    head: Linear,
    num_classes: usize,
}

impl Classifier {
    /// Creates the classifier.
    pub fn new(store: &mut ParamStore, cfg: &KvecConfig, rng: &mut KvecRng) -> Self {
        Self {
            head: Linear::new(store, "classifier", cfg.d_model, cfg.num_classes, rng),
            num_classes: cfg.num_classes,
        }
    }

    /// Class logits of a representation (`1 x d -> 1 x C`); softmax is
    /// folded into the loss / prediction.
    pub fn logits<'s>(&self, sess: &'s Session, store: &ParamStore, s: Var<'s>) -> Var<'s> {
        self.head.forward(sess, store, s)
    }

    /// Tape-free prediction: `(argmax class, class probabilities)`.
    pub fn predict(&self, store: &ParamStore, s: &Tensor) -> (usize, Tensor) {
        let logits = self.head.apply(store, s);
        let probs = logits.softmax_rows();
        (probs.argmax_row(0), probs)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Parameter ids of the head.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.head.param_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvec_data::ValueSchema;

    fn make() -> (Classifier, ParamStore, KvecConfig) {
        let schema = ValueSchema::new(vec!["a".into()], vec![4], 0);
        let cfg = KvecConfig::tiny(&schema, 3);
        let mut store = ParamStore::new();
        let mut rng = KvecRng::seed_from_u64(1);
        let clf = Classifier::new(&mut store, &cfg, &mut rng);
        (clf, store, cfg)
    }

    #[test]
    fn logits_shape() {
        let (clf, store, cfg) = make();
        let sess = Session::new();
        let s = sess.input(Tensor::ones(1, cfg.d_model));
        assert_eq!(clf.logits(&sess, &store, s).shape(), (1, 3));
    }

    #[test]
    fn predict_probabilities_sum_to_one() {
        let (clf, store, cfg) = make();
        let mut rng = KvecRng::seed_from_u64(2);
        let s = Tensor::rand_uniform(1, cfg.d_model, -1.0, 1.0, &mut rng);
        let (pred, probs) = clf.predict(&store, &s);
        assert!(pred < 3);
        assert!((probs.sum() - 1.0).abs() < 1e-5);
        assert_eq!(probs.argmax_row(0), pred);
    }

    #[test]
    fn tape_and_tensor_paths_agree() {
        let (clf, store, cfg) = make();
        let mut rng = KvecRng::seed_from_u64(3);
        let s = Tensor::rand_uniform(1, cfg.d_model, -1.0, 1.0, &mut rng);
        let sess = Session::new();
        let sv = sess.input(s.clone());
        let tape_logits = clf.logits(&sess, &store, sv).value();
        let (_, probs) = clf.predict(&store, &s);
        assert!(tape_logits.softmax_rows().allclose(&probs, 1e-6));
    }
}
