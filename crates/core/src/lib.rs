//! # kvec
//!
//! The KVEC model — *Key-Value sequence Early Co-classification* (Duan et
//! al., ICDE 2024) — classifying each key-value sequence inside a tangled
//! stream both **early** and **accurately**.
//!
//! Architecture (paper Section IV):
//!
//! 1. **KVRL** (key-value sequence representation learning): every arriving
//!    item is embedded as the sum of a value embedding, a (hashed)
//!    membership embedding, a relative-position embedding and an
//!    arrival-time embedding; a stack of self-attention blocks refines the
//!    embeddings under a **dynamic correlation mask** that only lets an
//!    item attend to earlier items related through *key correlation* (same
//!    sequence) or *value correlation* (same session signature across
//!    sequences); an LSTM-style gated **fusion** folds each sequence's item
//!    embeddings into its representation `s_k^(t)`.
//! 2. **ECTL** (early co-classification timing learning): a REINFORCE-with-
//!    baseline halting policy reads `s_k^(t)` and decides *Halt* (classify
//!    now) or *Wait* (observe more items).
//! 3. A linear-softmax **classifier** labels halted sequences.
//!
//! Training jointly minimizes `l1 + alpha*l2 + beta*l3` (cross-entropy,
//! policy surrogate, lateness penalty) plus an MSE regression for the value
//! baseline — Algorithm 1 of the paper, implemented in [`train`].
//!
//! Quick start:
//!
//! ```
//! use kvec::{KvecConfig, KvecModel, train::Trainer, eval::evaluate};
//! use kvec_data::{synth::{generate_traffic, TrafficConfig}, Dataset};
//! use kvec_tensor::KvecRng;
//!
//! let mut rng = KvecRng::seed_from_u64(1);
//! let cfg_data = TrafficConfig::traffic_app(40).scaled_len(0.3);
//! let pool = generate_traffic(&cfg_data, &mut rng);
//! let ds = Dataset::from_pool("demo", cfg_data.schema(), 10, pool, 4, &mut rng);
//!
//! let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
//! let mut model = KvecModel::new(&cfg, &mut rng);
//! let mut trainer = Trainer::new(&cfg, &model);
//! for scenario in &ds.train {
//!     trainer.train_scenario(&mut model, scenario, &mut rng).unwrap();
//! }
//! let report = evaluate(&model, &ds.test);
//! assert!(report.accuracy >= 0.0 && report.earliness <= 1.0);
//! ```

pub mod cache;
pub mod checkpoint;
pub mod classifier;
pub mod config;
pub mod cv;
pub mod ectl;
pub mod embedding;
pub mod eval;
pub mod faults;
pub mod kvrl;
pub mod mask;
pub mod metrics;
pub mod model;
pub mod streaming;
pub mod train;

pub use cache::CacheWindow;
pub use config::KvecConfig;
pub use eval::{evaluate, EvalReport};
pub use faults::{FaultInjector, ServeChaos};
pub use model::KvecModel;
pub use streaming::{StreamError, StreamingEngine};
pub use train::{BadStepReason, RecoveryEvent, TrainError, WatchdogConfig};
