//! Extended classification metrics: confusion matrices and per-class
//! reports, complementing the aggregate numbers in [`crate::eval`].

use std::fmt;

/// A `C x C` confusion matrix; rows are ground-truth labels, columns are
/// predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    num_classes: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from `(label, pred)` pairs.
    pub fn from_pairs(pairs: &[(usize, usize)], num_classes: usize) -> Self {
        let mut counts = vec![0usize; num_classes * num_classes];
        for &(label, pred) in pairs {
            assert!(label < num_classes, "label {label} out of range");
            assert!(pred < num_classes, "pred {pred} out of range");
            counts[label * num_classes + pred] += 1;
        }
        Self {
            counts,
            num_classes,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of sequences with ground truth `label` predicted as `pred`.
    pub fn get(&self, label: usize, pred: usize) -> usize {
        self.counts[label * self.num_classes + pred]
    }

    /// Total number of sequences.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let trace: usize = (0..self.num_classes).map(|c| self.get(c, c)).sum();
        trace as f32 / total as f32
    }

    /// Number of ground-truth sequences of `label`.
    pub fn support(&self, label: usize) -> usize {
        (0..self.num_classes).map(|p| self.get(label, p)).sum()
    }

    /// Per-class `(precision, recall, f1, support)` rows.
    pub fn per_class(&self) -> Vec<ClassReport> {
        (0..self.num_classes)
            .map(|c| {
                let tp = self.get(c, c);
                let support = self.support(c);
                let predicted: usize = (0..self.num_classes).map(|l| self.get(l, c)).sum();
                let precision = if predicted == 0 {
                    0.0
                } else {
                    tp as f32 / predicted as f32
                };
                let recall = if support == 0 {
                    0.0
                } else {
                    tp as f32 / support as f32
                };
                let f1 = if precision + recall == 0.0 {
                    0.0
                } else {
                    2.0 * precision * recall / (precision + recall)
                };
                ClassReport {
                    class: c,
                    precision,
                    recall,
                    f1,
                    support,
                }
            })
            .collect()
    }

    /// The most confused off-diagonal pair `(label, pred, count)`, if any
    /// misclassification occurred.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None;
        for l in 0..self.num_classes {
            for p in 0..self.num_classes {
                if l == p {
                    continue;
                }
                let n = self.get(l, p);
                if n > 0 && best.is_none_or(|(_, _, b)| n > b) {
                    best = Some((l, p, n));
                }
            }
        }
        best
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truth\\pred")?;
        for p in 0..self.num_classes {
            write!(f, " {p:>5}")?;
        }
        writeln!(f)?;
        for l in 0..self.num_classes {
            write!(f, "{l:>10}")?;
            for p in 0..self.num_classes {
                write!(f, " {:>5}", self.get(l, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One class's precision/recall/F1 with its support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassReport {
    /// Class index.
    pub class: usize,
    /// Precision for this class.
    pub precision: f32,
    /// Recall for this class.
    pub recall: f32,
    /// F1 for this class.
    pub f1: f32,
    /// Number of ground-truth sequences of this class.
    pub support: usize,
}

impl crate::eval::EvalReport {
    /// Builds the confusion matrix of this report's outcomes.
    pub fn confusion_matrix(&self, num_classes: usize) -> ConfusionMatrix {
        let pairs: Vec<(usize, usize)> = self.outcomes.iter().map(|o| (o.label, o.pred)).collect();
        ConfusionMatrix::from_pairs(&pairs, num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // truth 0: 3 correct, 1 as class 1; truth 1: 2 correct; truth 2: 1
        // as class 0.
        ConfusionMatrix::from_pairs(&[(0, 0), (0, 0), (0, 0), (0, 1), (1, 1), (1, 1), (2, 0)], 3)
    }

    #[test]
    fn counts_and_accuracy() {
        let m = sample();
        assert_eq!(m.get(0, 0), 3);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(2, 0), 1);
        assert_eq!(m.total(), 7);
        assert!((m.accuracy() - 5.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn per_class_reports() {
        let m = sample();
        let rows = m.per_class();
        // Class 0: tp 3, predicted 4, support 4 -> p 0.75, r 0.75.
        assert!((rows[0].precision - 0.75).abs() < 1e-6);
        assert!((rows[0].recall - 0.75).abs() < 1e-6);
        assert_eq!(rows[0].support, 4);
        // Class 2: no correct predictions.
        assert_eq!(rows[2].f1, 0.0);
        assert_eq!(rows[2].support, 1);
    }

    #[test]
    fn worst_confusion_found() {
        let m = sample();
        let (l, p, n) = m.worst_confusion().unwrap();
        assert!(n == 1 && l != p);
        let perfect = ConfusionMatrix::from_pairs(&[(0, 0), (1, 1)], 2);
        assert!(perfect.worst_confusion().is_none());
    }

    #[test]
    fn display_renders_all_cells() {
        let m = ConfusionMatrix::from_pairs(&[(0, 1)], 2);
        let s = m.to_string();
        assert!(s.contains("truth\\pred"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn empty_matrix() {
        let m = ConfusionMatrix::from_pairs(&[], 2);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
    }
}
