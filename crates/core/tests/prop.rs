//! Property-based tests of the dynamic-mask invariants — the heart of the
//! paper's representation learning. (Ported from proptest to the in-tree
//! `kvec-check` harness.)

use kvec::mask::{build_mask, EdgeKind};
use kvec_check::{check, Gen};
use kvec_data::{Item, Key, TangledSequence};

/// Random tangled streams: up to 5 keys, binary session codes, 1..30 items.
fn gen_stream(g: &mut Gen) -> TangledSequence {
    let len = g.usize_in(1, 30);
    let raw: Vec<(u64, u32)> = (0..len).map(|_| (g.u64() % 5, g.u32_below(2))).collect();
    let items: Vec<Item> = raw
        .iter()
        .enumerate()
        .map(|(t, &(k, code))| Item::new(Key(k), vec![code], t as u64))
        .collect();
    let mut keys: Vec<u64> = raw.iter().map(|&(k, _)| k).collect();
    keys.sort_unstable();
    keys.dedup();
    let labels = keys.into_iter().map(|k| (Key(k), 0usize)).collect();
    TangledSequence::new(items, labels)
}

#[test]
fn diagonal_always_visible() {
    check("diagonal_always_visible", |g| {
        let t = gen_stream(g);
        let dm = build_mask(&t, 0, true, true);
        for i in 0..t.len() {
            assert_eq!(dm.mask[(i, i)], 0.0);
        }
    });
}

#[test]
fn strict_causality() {
    check("strict_causality", |g| {
        let t = gen_stream(g);
        for (uk, uv) in [(true, true), (true, false), (false, true), (false, false)] {
            let dm = build_mask(&t, 0, uk, uv);
            for i in 0..t.len() {
                for j in (i + 1)..t.len() {
                    assert_eq!(dm.mask[(i, j)], f32::NEG_INFINITY);
                }
            }
        }
    });
}

#[test]
fn edges_grow_monotonically_with_enabled_correlations() {
    check("edges_grow_monotonically_with_enabled_correlations", |g| {
        let t = gen_stream(g);
        let count = |uk: bool, uv: bool| {
            let dm = build_mask(&t, 0, uk, uv);
            dm.mask.data().iter().filter(|&&v| v == 0.0).count()
        };
        let none = count(false, false);
        let key_only = count(true, false);
        let value_only = count(false, true);
        let both = count(true, true);
        assert!(key_only >= none);
        assert!(value_only >= none);
        assert!(both >= key_only.max(value_only));
        // With both off, exactly the diagonal survives.
        assert_eq!(none, t.len());
    });
}

#[test]
fn key_edges_never_cross_keys_and_value_edges_always_do() {
    check(
        "key_edges_never_cross_keys_and_value_edges_always_do",
        |g| {
            let t = gen_stream(g);
            let dm = build_mask(&t, 0, true, true);
            let n = t.len();
            for i in 0..n {
                for j in 0..n {
                    match dm.kinds[i * n + j] {
                        EdgeKind::Key => {
                            assert_eq!(t.items[i].key, t.items[j].key);
                            assert!(j < i, "key edge must point backwards");
                        }
                        EdgeKind::Value => {
                            assert_ne!(t.items[i].key, t.items[j].key);
                            assert!(j < i);
                            // A value edge requires matching session codes.
                            assert_eq!(t.items[i].value[0], t.items[j].value[0]);
                        }
                        EdgeKind::SelfEdge => assert_eq!(i, j),
                        EdgeKind::None => {}
                    }
                }
            }
        },
    );
}

#[test]
fn key_correlation_is_complete_within_a_key() {
    check("key_correlation_is_complete_within_a_key", |g| {
        let t = gen_stream(g);
        // With key correlation on, every pair (i, j<i) of the same key is
        // visible.
        let dm = build_mask(&t, 0, true, false);
        for i in 0..t.len() {
            for j in 0..i {
                if t.items[i].key == t.items[j].key {
                    assert_eq!(dm.mask[(i, j)], 0.0, "({i}, {j})");
                }
            }
        }
    });
}

#[test]
fn kinds_and_mask_agree() {
    check("kinds_and_mask_agree", |g| {
        let t = gen_stream(g);
        let dm = build_mask(&t, 0, true, true);
        let n = t.len();
        for i in 0..n {
            for j in 0..n {
                let visible = dm.mask[(i, j)] == 0.0;
                let kind = dm.kinds[i * n + j];
                assert_eq!(visible, kind != EdgeKind::None, "({i}, {j})");
            }
        }
    });
}
