//! Property-based tests of the dynamic-mask invariants — the heart of the
//! paper's representation learning.

use kvec::mask::{build_mask, EdgeKind};
use kvec_data::{Item, Key, TangledSequence};
use proptest::prelude::*;

/// Random tangled streams: up to 5 keys, binary session codes.
fn stream_strategy() -> impl Strategy<Value = TangledSequence> {
    proptest::collection::vec((0u64..5, 0u32..2), 1..30).prop_map(|raw| {
        let items: Vec<Item> = raw
            .iter()
            .enumerate()
            .map(|(t, &(k, code))| Item::new(Key(k), vec![code], t as u64))
            .collect();
        let mut keys: Vec<u64> = raw.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        keys.dedup();
        let labels = keys.into_iter().map(|k| (Key(k), 0usize)).collect();
        TangledSequence::new(items, labels)
    })
}

proptest! {
    #[test]
    fn diagonal_always_visible(t in stream_strategy()) {
        let dm = build_mask(&t, 0, true, true);
        for i in 0..t.len() {
            prop_assert_eq!(dm.mask[(i, i)], 0.0);
        }
    }

    #[test]
    fn strict_causality(t in stream_strategy()) {
        for (uk, uv) in [(true, true), (true, false), (false, true), (false, false)] {
            let dm = build_mask(&t, 0, uk, uv);
            for i in 0..t.len() {
                for j in (i + 1)..t.len() {
                    prop_assert_eq!(dm.mask[(i, j)], f32::NEG_INFINITY);
                }
            }
        }
    }

    #[test]
    fn edges_grow_monotonically_with_enabled_correlations(t in stream_strategy()) {
        let count = |uk: bool, uv: bool| {
            let dm = build_mask(&t, 0, uk, uv);
            dm.mask.data().iter().filter(|&&v| v == 0.0).count()
        };
        let none = count(false, false);
        let key_only = count(true, false);
        let value_only = count(false, true);
        let both = count(true, true);
        prop_assert!(key_only >= none);
        prop_assert!(value_only >= none);
        prop_assert!(both >= key_only.max(value_only));
        // With both off, exactly the diagonal survives.
        prop_assert_eq!(none, t.len());
    }

    #[test]
    fn key_edges_never_cross_keys_and_value_edges_always_do(t in stream_strategy()) {
        let dm = build_mask(&t, 0, true, true);
        let n = t.len();
        for i in 0..n {
            for j in 0..n {
                match dm.kinds[i * n + j] {
                    EdgeKind::Key => {
                        prop_assert_eq!(t.items[i].key, t.items[j].key);
                        prop_assert!(j < i, "key edge must point backwards");
                    }
                    EdgeKind::Value => {
                        prop_assert_ne!(t.items[i].key, t.items[j].key);
                        prop_assert!(j < i);
                        // A value edge requires matching session codes.
                        prop_assert_eq!(t.items[i].value[0], t.items[j].value[0]);
                    }
                    EdgeKind::SelfEdge => prop_assert_eq!(i, j),
                    EdgeKind::None => {}
                }
            }
        }
    }

    #[test]
    fn key_correlation_is_complete_within_a_key(t in stream_strategy()) {
        // With key correlation on, every pair (i, j<i) of the same key is
        // visible.
        let dm = build_mask(&t, 0, true, false);
        for i in 0..t.len() {
            for j in 0..i {
                if t.items[i].key == t.items[j].key {
                    prop_assert_eq!(dm.mask[(i, j)], 0.0, "({}, {})", i, j);
                }
            }
        }
    }

    #[test]
    fn kinds_and_mask_agree(t in stream_strategy()) {
        let dm = build_mask(&t, 0, true, true);
        let n = t.len();
        for i in 0..n {
            for j in 0..n {
                let visible = dm.mask[(i, j)] == 0.0;
                let kind = dm.kinds[i * n + j];
                prop_assert_eq!(visible, kind != EdgeKind::None, "({}, {})", i, j);
            }
        }
    }
}
