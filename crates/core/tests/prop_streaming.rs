//! Property-based equivalence of the bounded-memory streaming engine.
//!
//! The windowed cache (`with_windowed_cache`) may only ever evict KV rows
//! that no live key's correlation window can still attend — so against the
//! drop-only engine (`with_halted_feed_dropping`, same semantics, no
//! eviction) every observable output must be **bit-identical**: same halt
//! steps, same predictions, same probability bits, same errors. Any
//! divergence means a row was evicted while still reachable.

use kvec::streaming::{Decision, StreamError, StreamingEngine};
use kvec::{KvecConfig, KvecModel};
use kvec_check::{check_n, Gen};
use kvec_data::{Item, Key, TangledSequence, ValueSchema};
use kvec_tensor::KvecRng;

const NUM_KEYS: u64 = 8;
const SESSION_CODES: u32 = 4;

/// Random tangled streams long enough to cross the compaction hysteresis
/// threshold several times, so eviction actually fires mid-stream.
fn gen_stream(g: &mut Gen) -> TangledSequence {
    let len = g.usize_in(40, 160);
    let raw: Vec<(u64, u32)> = (0..len)
        .map(|_| (g.u64() % NUM_KEYS, g.u32_below(SESSION_CODES)))
        .collect();
    let items: Vec<Item> = raw
        .iter()
        .enumerate()
        .map(|(t, &(k, code))| Item::new(Key(k), vec![code], t as u64))
        .collect();
    let mut keys: Vec<u64> = raw.iter().map(|&(k, _)| k).collect();
    keys.sort_unstable();
    keys.dedup();
    let labels = keys.into_iter().map(|k| (Key(k), 0usize)).collect();
    TangledSequence::new(items, labels)
}

fn gen_model(g: &mut Gen) -> KvecModel {
    let schema = ValueSchema::new(vec!["session".into()], vec![SESSION_CODES as usize], 0);
    let mut cfg = KvecConfig::tiny(&schema, 2);
    // Vary the halt point so cases cover early halts, late halts, and
    // streams the policy never halts (forced decisions at finish).
    cfg.halt_threshold = g.f32_in(0.35, 0.75);
    // Exercise the ablation quadrants: the live horizon is derived
    // differently for each correlation flag combination.
    cfg.use_key_correlation = g.bool();
    cfg.use_value_correlation = g.bool();
    let mut rng = KvecRng::seed_from_u64(g.u64());
    KvecModel::new(&cfg, &mut rng)
}

fn assert_bit_identical(a: &Decision, b: &Decision) {
    assert_eq!(a.key, b.key);
    assert_eq!(a.pred, b.pred);
    assert_eq!(a.n_items, b.n_items);
    assert_eq!(a.global_pos, b.global_pos);
    assert_eq!(a.halted_by_policy, b.halted_by_policy);
    let bits = |p: &[f32]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.probs), bits(&b.probs), "probs differ in the bits");
}

#[test]
fn windowed_engine_is_bit_identical_to_unbounded_drop_engine() {
    check_n(
        "windowed_engine_is_bit_identical_to_unbounded_drop_engine",
        40,
        |g| {
            let tangled = gen_stream(g);
            let model = gen_model(g);
            let limit = g.bool().then(|| g.usize_in(1, NUM_KEYS as usize));

            let mut reference = StreamingEngine::new(&model).with_halted_feed_dropping();
            let mut windowed = StreamingEngine::new(&model).with_windowed_cache();
            if let Some(limit) = limit {
                reference = reference.with_max_active_keys(limit);
                windowed = windowed.with_max_active_keys(limit);
            }

            let mut max_resident = 0usize;
            for item in &tangled.items {
                match (reference.feed(item), windowed.feed(item)) {
                    (Ok(a), Ok(b)) => match (a, b) {
                        (Some(a), Some(b)) => assert_bit_identical(&a, &b),
                        (None, None) => {}
                        (a, b) => panic!(
                            "decision presence diverged at pos {}: ref={:?} win={:?}",
                            item.time,
                            a.map(|d| d.key),
                            b.map(|d| d.key)
                        ),
                    },
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "both engines must reject identically");
                        assert!(
                            matches!(a, StreamError::ActiveKeyLimit { .. }),
                            "only the key bound can fire here"
                        );
                    }
                    (a, b) => panic!(
                        "acceptance diverged at pos {}: ref={:?} win={:?}",
                        item.time,
                        a.map(|d| d.map(|d| d.key)),
                        b.map(|d| d.map(|d| d.key))
                    ),
                }
                // Occasionally force-classify a key mid-stream (flow-end
                // retirement): the main driver of horizon advancement.
                if g.u32_below(8) == 0 {
                    let key = Key(g.u64() % NUM_KEYS);
                    match (reference.halt_key(key), windowed.halt_key(key)) {
                        (Ok(Some(a)), Ok(Some(b))) => assert_bit_identical(&a, &b),
                        (Ok(None), Ok(None)) => {}
                        (Err(a), Err(b)) => {
                            assert_eq!(a, b, "both engines must reject identically");
                            assert!(
                                matches!(a, StreamError::UnknownKey { .. }),
                                "only an unknown key can fail halt_key here"
                            );
                        }
                        _ => panic!("halt_key diverged for {key:?}"),
                    }
                }
                max_resident = max_resident.max(windowed.cache_rows());
                assert_eq!(
                    windowed.cache_rows() + windowed.evicted_rows(),
                    reference.cache_rows(),
                    "evicted + resident must account for every accepted row"
                );
            }

            let final_ref = reference.finish();
            let final_win = windowed.finish();
            assert_eq!(final_ref.len(), final_win.len());
            for (a, b) in final_ref.iter().zip(&final_win) {
                assert_bit_identical(a, b);
            }
            assert_eq!(windowed.cache_rows(), 0, "finish reclaims the cache");
            assert_eq!(reference.halted_feed_drops(), windowed.halted_feed_drops());
            assert_eq!(reference.items_seen(), windowed.items_seen());
            assert!(
                max_resident <= reference.cache_rows(),
                "residency can never exceed the unbounded engine's rows"
            );
        },
    );
}

#[test]
fn all_three_guards_stacked_match_the_drop_only_engine() {
    // The three memory guards — `with_max_active_keys`, halted-feed
    // dropping, and the windowed cache — were only property-tested
    // pairwise before. Stack all three explicitly (the serving layer's
    // production configuration) against a drop-only engine with the same
    // key bound: every acceptance verdict, decision bit, and counter must
    // still agree, and forced halts through `halt_key` must behave
    // identically under the stack.
    check_n(
        "all_three_guards_stacked_match_the_drop_only_engine",
        30,
        |g| {
            let tangled = gen_stream(g);
            let model = gen_model(g);
            let limit = g.usize_in(1, NUM_KEYS as usize);

            let mut reference = StreamingEngine::new(&model)
                .with_halted_feed_dropping()
                .with_max_active_keys(limit);
            let mut stacked = StreamingEngine::new(&model)
                .with_halted_feed_dropping()
                .with_windowed_cache()
                .with_max_active_keys(limit);

            for item in &tangled.items {
                match (reference.feed(item), stacked.feed(item)) {
                    (Ok(Some(a)), Ok(Some(b))) => assert_bit_identical(&a, &b),
                    (Ok(None), Ok(None)) => {}
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "rejections must agree under the stack");
                        assert!(matches!(a, StreamError::ActiveKeyLimit { .. }));
                    }
                    (a, b) => panic!(
                        "stacked engine diverged at pos {}: ref={:?} stacked={:?}",
                        item.time,
                        a.map(|d| d.map(|d| d.key)),
                        b.map(|d| d.map(|d| d.key)),
                    ),
                }
                // Forced halts (the deadline enforcer's path) interleaved
                // with natural halts; unknown keys must fail identically.
                if g.u32_below(6) == 0 {
                    let key = Key(g.u64() % (NUM_KEYS * 2));
                    match (reference.halt_key(key), stacked.halt_key(key)) {
                        (Ok(Some(a)), Ok(Some(b))) => assert_bit_identical(&a, &b),
                        (Ok(None), Ok(None)) => {}
                        (Err(a), Err(b)) => {
                            assert_eq!(a, b);
                            assert!(matches!(a, StreamError::UnknownKey { .. }));
                        }
                        _ => panic!("halt_key diverged for {key:?} under the stack"),
                    }
                }
                assert!(
                    stacked.cache_rows() <= reference.cache_rows(),
                    "the windowed guard must never hold more rows than drop-only"
                );
                assert!(stacked.tracked_keys() <= limit, "key bound must hold");
            }

            let final_ref = reference.finish();
            let final_stk = stacked.finish();
            assert_eq!(final_ref.len(), final_stk.len());
            for (a, b) in final_ref.iter().zip(&final_stk) {
                assert_bit_identical(a, b);
            }
            assert_eq!(stacked.cache_rows(), 0, "finish reclaims the cache");
            assert_eq!(reference.halted_feed_drops(), stacked.halted_feed_drops());
            assert_eq!(reference.tracked_keys(), stacked.tracked_keys());
            assert_eq!(reference.items_seen(), stacked.items_seen());
        },
    );
}

#[test]
fn eviction_fires_and_stays_bounded_when_keys_retire_at_a_boundary() {
    // Deterministic boundary case: keys arrive in disjoint waves and are
    // force-halted at each wave end, so the horizon jumps in steps that
    // land exactly on compaction boundaries.
    let schema = ValueSchema::new(vec!["session".into()], vec![2], 0);
    let mut cfg = KvecConfig::tiny(&schema, 2);
    cfg.halt_threshold = 1.0; // sigmoid stays below 1: waves control lifetime
    let mut rng = KvecRng::seed_from_u64(42);
    let model = KvecModel::new(&cfg, &mut rng);

    let mut reference = StreamingEngine::new(&model).with_halted_feed_dropping();
    let mut windowed = StreamingEngine::new(&model).with_windowed_cache();

    let waves = 6usize;
    let keys_per_wave = 2u64;
    let items_per_key = 32usize; // wave span = 64 = the compaction minimum
    let mut t = 0u64;
    let mut max_resident = 0usize;
    for wave in 0..waves {
        let wave_keys: Vec<Key> = (0..keys_per_wave)
            .map(|i| Key(wave as u64 * keys_per_wave + i))
            .collect();
        for round in 0..items_per_key {
            for &key in &wave_keys {
                let item = Item::new(key, vec![(round % 2) as u32], t);
                t += 1;
                let a = reference.feed(&item).unwrap();
                let b = windowed.feed(&item).unwrap();
                assert!(a.is_none() && b.is_none(), "threshold 1.0 never halts");
                max_resident = max_resident.max(windowed.cache_rows());
            }
        }
        for &key in &wave_keys {
            let a = reference.halt_key(key).unwrap().expect("key is live");
            let b = windowed.halt_key(key).unwrap().expect("key is live");
            assert_bit_identical(&a, &b);
        }
    }
    assert!(
        windowed.evicted_rows() > 0,
        "wave retirement must actually evict"
    );
    let wave_span = keys_per_wave as usize * items_per_key;
    assert!(
        max_resident <= 2 * wave_span + 64,
        "resident rows ({max_resident}) must stay O(live wave), not O(stream)"
    );
    assert_eq!(reference.cache_rows(), t as usize, "reference never evicts");
    assert!(reference.finish().is_empty() && windowed.finish().is_empty());
    assert_eq!(windowed.cache_rows(), 0);
}
