//! The streaming inference engine must agree exactly with the
//! teacher-forced evaluation path on a *trained* model — this is the
//! contract that makes the training-time full forward a valid surrogate
//! for deployment-time incremental inference.

use kvec::eval::evaluate_scenario;
use kvec::train::Trainer;
use kvec::{KvecConfig, KvecModel, StreamingEngine};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_tensor::KvecRng;

fn setup(seed: u64) -> (KvecModel, Dataset) {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = TrafficConfig {
        num_flows: 40,
        num_classes: 3,
        mean_len: 14,
        min_len: 10,
        max_len: 18,
        ..TrafficConfig::traffic_fg(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    let ds = Dataset::from_pool("stream", cfg.schema(), 3, pool, 4, &mut rng);

    let mcfg = KvecConfig::tiny(&ds.schema, 3).with_beta(0.1);
    let mut model = KvecModel::new(&mcfg, &mut rng);
    let mut trainer = Trainer::new(&mcfg, &model);
    for _ in 0..6 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .unwrap();
    }
    (model, ds)
}

#[test]
fn trained_streaming_matches_batch_on_every_test_scenario() {
    let (model, ds) = setup(11);
    for scenario in ds.test.iter().chain(&ds.val) {
        let batch = evaluate_scenario(&model, scenario);
        let decisions = StreamingEngine::run(&model, scenario);
        assert_eq!(decisions.len(), batch.len());
        let stream: std::collections::BTreeMap<_, _> =
            decisions.iter().map(|d| (d.key, d)).collect();
        for outcome in &batch {
            let d = stream[&outcome.key];
            assert_eq!(
                d.pred, outcome.pred,
                "prediction mismatch {:?}",
                outcome.key
            );
            assert_eq!(d.n_items, outcome.n_k, "halt mismatch {:?}", outcome.key);
        }
    }
}

#[test]
fn streaming_decisions_are_causal() {
    // A decision emitted at stream position p may only depend on items
    // 0..=p: replaying a truncated stream must reproduce every decision
    // whose position is inside the truncation.
    let (model, ds) = setup(13);
    let scenario = &ds.test[0];
    let full = StreamingEngine::run(&model, scenario);

    let cut = scenario.len() / 2;
    let prefix = scenario.prefix(cut);
    let mut engine = StreamingEngine::new(&model);
    let mut early_decisions = Vec::new();
    for item in &prefix.items {
        if let Some(d) = engine.feed(item).unwrap() {
            early_decisions.push(d);
        }
    }
    for d in &early_decisions {
        let in_full = full
            .iter()
            .find(|f| f.key == d.key && f.halted_by_policy)
            .expect("policy decision must also exist in the full replay");
        assert_eq!(d.pred, in_full.pred);
        assert_eq!(d.n_items, in_full.n_items);
        assert_eq!(d.global_pos, in_full.global_pos);
    }
}

#[test]
fn engine_throughput_state_grows_linearly() {
    // Smoke check on cache bookkeeping: items_seen counts every fed item,
    // halted keys never exceed key count.
    let (model, ds) = setup(17);
    let scenario = &ds.test[0];
    let mut engine = StreamingEngine::new(&model);
    for (i, item) in scenario.items.iter().enumerate() {
        let _ = engine.feed(item).unwrap();
        assert_eq!(engine.items_seen(), i + 1);
        assert!(engine.halted_count() <= scenario.num_keys());
    }
}
