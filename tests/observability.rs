//! End-to-end contract of the observability layer: a traced training +
//! streaming run must emit the structured records the ISSUE promises —
//! per-epoch loss and gradient norm, per-step records, watchdog events
//! (forced here via the fault injector), the streaming active-key gauge —
//! and the aggregate exports (metrics summary, chrome trace) must
//! round-trip through `kvec-json`.
//!
//! The subscriber is process-global, so every test takes a shared lock
//! and installs a fresh `Memory` sink.

use kvec::faults::FaultInjector;
use kvec::train::Trainer;
use kvec::{KvecConfig, KvecModel, StreamingEngine};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_json::Json;
use kvec_obs::{self as obs, Config, Level, SinkConfig};
use kvec_tensor::KvecRng;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn dataset() -> Dataset {
    let mut rng = KvecRng::seed_from_u64(11);
    let cfg = TrafficConfig {
        num_flows: 16,
        num_classes: 2,
        mean_len: 10,
        min_len: 8,
        max_len: 14,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    Dataset::from_pool("obs", cfg.schema(), 2, pool, 4, &mut rng)
}

/// Runs two training epochs (with NaN gradients injected at step 1, so
/// the watchdog fires) and a streaming replay of one scenario, all under
/// a Memory sink at Debug level. Returns the captured JSONL lines.
fn traced_run() -> Vec<String> {
    obs::configure(Config {
        enabled: true,
        level: Level::Debug,
        sink: SinkConfig::Memory,
    });
    obs::reset();

    let ds = dataset();
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(5);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    trainer.set_fault_injector(FaultInjector::new(0).poison_grads_at([1]));
    for _ in 0..2 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .expect("training must survive a poisoned step");
    }
    assert!(
        !trainer.events().is_empty(),
        "poisoned gradients must produce recovery events"
    );

    let mut engine = StreamingEngine::new(&model);
    for item in &ds.train[0].items {
        engine.feed(item).expect("feed");
    }
    engine.finish();
    assert!(engine.active_keys_high_water() > 0);

    obs::finish();
    let lines = obs::take_lines();
    obs::configure(Config {
        enabled: false,
        level: Level::Info,
        sink: SinkConfig::Null,
    });
    lines
}

/// Events of a given name, as parsed `fields` objects.
fn events_named(records: &[Json], name: &str) -> Vec<Json> {
    records
        .iter()
        .filter(|r| {
            r.get("kind").and_then(|k| k.as_str()).ok() == Some("event")
                && r.get("name").and_then(|n| n.as_str()).ok() == Some(name)
        })
        .map(|r| r.get("fields").unwrap().clone())
        .collect()
}

#[test]
fn traced_run_emits_the_promised_records() {
    let _g = lock();
    let lines = traced_run();
    assert!(!lines.is_empty());
    let records: Vec<Json> = lines
        .iter()
        .map(|l| Json::parse(l).expect("every JSONL line parses"))
        .collect();

    // Every record carries the common envelope.
    for r in &records {
        let kind = r.get("kind").and_then(|k| k.as_str()).unwrap();
        assert!(
            matches!(kind, "span" | "event" | "gauge"),
            "unknown kind {kind}"
        );
        assert!(r.get("ts_us").and_then(|t| t.as_f64()).unwrap() >= 0.0);
    }

    // Per-epoch milestones with loss + gradient norm.
    let epochs = events_named(&records, "train.epoch");
    assert_eq!(epochs.len(), 2, "one train.epoch event per epoch");
    for (i, f) in epochs.iter().enumerate() {
        assert_eq!(f.get("epoch").unwrap(), &Json::Int(i as i128));
        assert!(f.get("loss").and_then(|v| v.as_f64()).unwrap().is_finite());
        assert!(f.get("grad_norm_mean").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        assert!(f.get("good_steps").and_then(|v| v.as_f64()).unwrap() >= 1.0);
    }

    // Per-step debug records.
    let steps = events_named(&records, "train.step");
    assert!(
        steps.len() >= 2,
        "expected per-step events, got {}",
        steps.len()
    );
    for f in &steps {
        assert!(f.get("loss").and_then(|v| v.as_f64()).unwrap().is_finite());
        assert!(f.get("grad_norm").and_then(|v| v.as_f64()).unwrap() >= 0.0);
    }

    // The injected NaN step surfaces as a warn-level watchdog event.
    let watchdogs = events_named(&records, "train.watchdog");
    assert!(
        !watchdogs.is_empty(),
        "poisoned step must emit train.watchdog"
    );
    assert!(watchdogs.iter().any(|f| {
        f.get("action").and_then(|a| a.as_str()).ok() == Some("step_skipped")
            && f.get("reason").and_then(|r| r.as_str()).ok() == Some("non_finite_gradient")
    }));
    for f in &watchdogs {
        assert!(f.get("step").is_ok() && f.get("epoch").is_ok());
    }

    // Spans: the epoch scope must appear, with plausible nesting depth.
    let epoch_spans: Vec<&Json> = records
        .iter()
        .filter(|r| {
            r.get("kind").and_then(|k| k.as_str()).ok() == Some("span")
                && r.get("name").and_then(|n| n.as_str()).ok() == Some("train.epoch")
        })
        .collect();
    assert_eq!(epoch_spans.len(), 2);
    for s in &epoch_spans {
        assert_eq!(s.get("depth").unwrap(), &Json::Int(0));
        assert!(s.get("dur_us").and_then(|d| d.as_f64()).unwrap() > 0.0);
    }

    // Streaming: the active-key gauge is sampled as items arrive, and
    // per-decision events appear at debug level.
    let gauges: Vec<&Json> = records
        .iter()
        .filter(|r| {
            r.get("kind").and_then(|k| k.as_str()).ok() == Some("gauge")
                && r.get("name").and_then(|n| n.as_str()).ok() == Some("stream.active_keys")
        })
        .collect();
    assert!(
        !gauges.is_empty(),
        "streaming must sample stream.active_keys"
    );
    assert!(gauges
        .iter()
        .all(|g| g.get("value").and_then(|v| v.as_f64()).unwrap() >= 0.0));
    assert!(!events_named(&records, "stream.decision").is_empty());
}

#[test]
fn summary_and_chrome_trace_round_trip_through_kvec_json() {
    let _g = lock();
    let lines = traced_run();
    let records: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();

    // The final metrics.summary event carries the aggregates.
    let summaries = events_named(&records, "metrics.summary");
    assert_eq!(summaries.len(), 1, "obs::finish emits exactly one summary");
    let summary = summaries[0].get("summary").unwrap();

    // Round-trip: dump + reparse must preserve the object.
    let reparsed = Json::parse(&summary.dump()).expect("summary re-parses");
    assert_eq!(&reparsed, summary);

    // Halt-step histogram aggregated over every scenario of both epochs.
    let halt = reparsed
        .get("histograms")
        .and_then(|h| h.get("train.halt_step"))
        .expect("train.halt_step histogram present");
    assert!(halt.get("count").and_then(|c| c.as_f64()).unwrap() >= 2.0);
    assert!(halt.get("p50").and_then(|p| p.as_f64()).unwrap() >= 1.0);

    // Kernel timing counters from the matmul hot path.
    let counters = reparsed.get("counters").and_then(|c| c.as_obj()).unwrap();
    let matmul_calls: f64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("kernel.matmul") && k.ends_with(".calls"))
        .map(|(_, v)| v.as_f64().unwrap())
        .sum();
    assert!(
        matmul_calls >= 1.0,
        "training must hit instrumented matmuls"
    );

    // Streaming gauge present with its high-water mark.
    let gauge = reparsed
        .get("gauges")
        .and_then(|g| g.get("stream.active_keys"))
        .expect("stream.active_keys gauge present");
    assert!(gauge.get("high_water").and_then(|m| m.as_f64()).unwrap() >= 1.0);

    // Chrome trace export: metadata first, then complete spans and the
    // counter track; the whole document survives a dump/parse cycle.
    let trace = kvec_obs::export::chrome_trace();
    let reparsed = Json::parse(&trace.dump()).expect("chrome trace re-parses");
    assert_eq!(&reparsed, &trace);
    let events = reparsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .unwrap();
    assert!(!events.is_empty());
    let ph = |e: &Json| e.get("ph").and_then(|p| p.as_str()).unwrap().to_string();
    assert_eq!(ph(&events[0]), "M", "metadata records lead the trace");
    assert!(events.iter().any(|e| ph(e) == "X"));
    assert!(events.iter().any(|e| {
        ph(e) == "C" && e.get("name").and_then(|n| n.as_str()).ok() == Some("stream.active_keys")
    }));
}
