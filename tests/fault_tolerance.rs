//! End-to-end fault-tolerance contracts, driven by the deterministic
//! fault injector (`kvec::faults`):
//!
//! - a run killed at an arbitrary optimizer step resumes from its last
//!   checkpoint **bit-identically** to a run that was never interrupted —
//!   for both the serial and the data-parallel epoch driver;
//! - NaN gradients are skipped (parameters untouched), reported through
//!   the typed [`RecoveryEvent`] API, and after K consecutive bad steps
//!   the trainer rolls back to its last good state and keeps training;
//! - checkpoint corruption — any single byte flip, any truncation — is
//!   always detected at load, never deferred to a later forward pass, and
//!   every corruption mode yields its own readable error.

use kvec::faults::{self, FaultInjector};
use kvec::train::Trainer;
use kvec::{BadStepReason, KvecConfig, KvecModel, RecoveryEvent, TrainError};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_nn::checkpoint::CheckpointError;
use kvec_tensor::KvecRng;
use std::path::{Path, PathBuf};

const EPOCHS: usize = 3;
const SEED: u64 = 77;

fn dataset(seed: u64) -> Dataset {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = TrafficConfig {
        num_flows: 24,
        num_classes: 2,
        mean_len: 12,
        min_len: 10,
        max_len: 16,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    Dataset::from_pool("ft", cfg.schema(), 2, pool, 4, &mut rng)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kvec-fault-tolerance").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every parameter value of the model as raw bits — the strictest
/// possible "same trajectory" witness (`==` on f32 would let -0.0 == 0.0
/// slip through).
fn param_bits(model: &KvecModel) -> Vec<u32> {
    model
        .store
        .ids()
        .iter()
        .flat_map(|&id| model.store.value(id).data().iter().map(|f| f.to_bits()))
        .collect()
}

/// Bitwise fingerprint of one epoch's stats.
type Fingerprint = (u32, u32, u32, usize);

fn epoch_fingerprint(s: &kvec::train::EpochStats) -> Fingerprint {
    (
        s.loss.to_bits(),
        s.accuracy.to_bits(),
        s.earliness.to_bits(),
        s.num_keys,
    )
}

/// Trains EPOCHS epochs, checkpointing after each, and returns the
/// per-epoch fingerprints plus the final parameter bits.
fn uninterrupted_run(ds: &Dataset, workers: usize, dir: &Path) -> (Vec<Fingerprint>, Vec<u32>) {
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(SEED);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    let mut fingerprints = Vec::with_capacity(EPOCHS);
    for epoch in 0..EPOCHS {
        let s = trainer
            .train_epoch_parallel(&mut model, &ds.train, &mut rng, workers)
            .expect("uninterrupted run must not fail");
        fingerprints.push(epoch_fingerprint(&s));
        trainer
            .save_checkpoint(&model, &rng, dir.join(format!("epoch{epoch}.ckpt")))
            .expect("checkpoint write");
    }
    (fingerprints, param_bits(&model))
}

/// The kill/resume contract for one epoch driver: die at `kill_step` (an
/// arbitrary optimizer step inside epoch 1), resume from the epoch-0
/// checkpoint the killed run itself wrote, finish the remaining epochs,
/// and land on exactly the uninterrupted trajectory.
fn kill_resume_is_bit_identical(workers: usize, kill_step: u64, dir_name: &str) {
    let ds = dataset(1);
    assert!(ds.train.len() >= 3, "need a few scenarios per epoch");

    let ref_dir = tmp_dir(&format!("{dir_name}-ref"));
    let (ref_fingerprints, ref_bits) = uninterrupted_run(&ds, workers, &ref_dir);

    // --- the run that crashes ---
    let crash_dir = tmp_dir(&format!("{dir_name}-crash"));
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(SEED);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    trainer.set_fault_injector(FaultInjector::new(0).kill_at_step(kill_step));

    let first = trainer
        .train_epoch_parallel(&mut model, &ds.train, &mut rng, workers)
        .expect("epoch 0 completes before the kill step");
    assert_eq!(epoch_fingerprint(&first), ref_fingerprints[0]);
    let ckpt = crash_dir.join("epoch0.ckpt");
    trainer
        .save_checkpoint(&model, &rng, &ckpt)
        .expect("checkpoint write");

    let err = trainer
        .train_epoch_parallel(&mut model, &ds.train, &mut rng, workers)
        .expect_err("the injected crash must abort epoch 1");
    match err {
        TrainError::Killed { step } => assert_eq!(step, kill_step),
        other => panic!("expected Killed, got {other}"),
    }

    // --- resume into a fresh process (fresh model, fresh everything) ---
    let mut resumed_model = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(999));
    let (mut resumed, mut resumed_rng) =
        Trainer::resume(&cfg, &mut resumed_model, &ckpt).expect("resume");
    assert_eq!(
        resumed.epochs_done(),
        1,
        "checkpoint was at the epoch-1 boundary"
    );

    for fingerprint in &ref_fingerprints[1..] {
        let s = resumed
            .train_epoch_parallel(&mut resumed_model, &ds.train, &mut resumed_rng, workers)
            .expect("resumed run must not fail");
        assert_eq!(
            epoch_fingerprint(&s),
            *fingerprint,
            "post-resume epoch stats diverged from the uninterrupted run"
        );
    }
    assert_eq!(
        param_bits(&resumed_model),
        ref_bits,
        "post-resume parameters are not bit-identical to the uninterrupted run"
    );

    std::fs::remove_dir_all(ref_dir).ok();
    std::fs::remove_dir_all(crash_dir).ok();
}

#[test]
fn serial_kill_and_resume_is_bit_identical() {
    let ds = dataset(1);
    let steps_per_epoch = ds.train.len() as u64;
    // Mid-epoch-1 kill: an arbitrary step, neither the first nor the last.
    kill_resume_is_bit_identical(1, steps_per_epoch + steps_per_epoch / 2, "serial-mid");
}

#[test]
fn serial_kill_at_first_step_of_epoch_resumes_identically() {
    let ds = dataset(1);
    let steps_per_epoch = ds.train.len() as u64;
    kill_resume_is_bit_identical(1, steps_per_epoch, "serial-first");
}

#[test]
fn parallel_kill_and_resume_is_bit_identical() {
    let ds = dataset(1);
    let groups_per_epoch = ds.train.len().div_ceil(2) as u64;
    kill_resume_is_bit_identical(2, groups_per_epoch + 1, "parallel-mid");
}

#[test]
fn nan_gradients_are_skipped_and_k_consecutive_trigger_rollback() {
    let ds = dataset(2);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(5);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    let k = trainer.watchdog().max_consecutive_bad as u64;
    assert!(
        k >= 2,
        "test needs K >= 2 to distinguish skip from rollback"
    );

    // A few clean steps to establish a good snapshot and a reference state.
    for scenario in ds.train.iter().take(2) {
        trainer
            .train_scenario(&mut model, scenario, &mut rng)
            .unwrap();
    }
    assert!(
        trainer.take_events().is_empty(),
        "clean steps emit no events"
    );
    let good_bits = param_bits(&model);
    let first_bad = trainer.steps_done();

    // Poison K consecutive steps. Each must be skipped with parameters
    // untouched; the K-th must additionally roll back.
    trainer.set_fault_injector(FaultInjector::new(3).poison_grads_at(first_bad..first_bad + k));
    for (i, scenario) in ds.train.iter().cycle().skip(2).take(k as usize).enumerate() {
        trainer
            .train_scenario(&mut model, scenario, &mut rng)
            .expect("a skipped step is not a TrainError");
        assert_eq!(
            param_bits(&model),
            good_bits,
            "parameters changed on poisoned step {i}"
        );
    }

    let events = trainer.take_events();
    assert_eq!(
        events.len(),
        k as usize + 1,
        "K skips plus one rollback: {events:?}"
    );
    for (i, ev) in events.iter().take(k as usize).enumerate() {
        match ev {
            RecoveryEvent::StepSkipped { step, reason } => {
                assert_eq!(*step, first_bad + i as u64);
                assert_eq!(*reason, BadStepReason::NonFiniteGradient);
            }
            other => panic!("expected StepSkipped, got {other:?}"),
        }
    }
    match events.last().unwrap() {
        RecoveryEvent::RolledBack {
            step,
            restored_step,
            bad_steps,
        } => {
            assert_eq!(*step, first_bad + k - 1);
            assert_eq!(*bad_steps, k as usize);
            assert!(
                *restored_step <= first_bad,
                "rolled back to a pre-fault state"
            );
        }
        other => panic!("expected RolledBack, got {other:?}"),
    }

    // Recovery: with the injector gone, training continues and learns.
    trainer.clear_fault_injector();
    trainer
        .train_scenario(&mut model, &ds.train[0], &mut rng)
        .expect("training continues after rollback");
    assert!(
        trainer.take_events().is_empty(),
        "healthy step emits no events"
    );
    assert_ne!(
        param_bits(&model),
        good_bits,
        "post-rollback step applied an update"
    );
    assert!(
        !model.store.has_non_finite(),
        "NaN never reached the parameters"
    );
}

#[test]
fn watchdog_fires_in_the_parallel_driver_too() {
    let ds = dataset(3);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(6);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    trainer.set_fault_injector(FaultInjector::new(4).poison_grads_at([1]));

    trainer
        .train_epoch_parallel(&mut model, &ds.train, &mut rng, 2)
        .expect("a skipped group step aborts nothing");
    let events = trainer.take_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            RecoveryEvent::StepSkipped {
                step: 1,
                reason: BadStepReason::NonFiniteGradient
            }
        )),
        "poisoned group step was not reported: {events:?}"
    );
    assert!(!model.store.has_non_finite());
}

/// `Trainer::resume` that must fail, returning the error (`Trainer` is
/// not `Debug`, so `expect_err` cannot).
fn resume_err(cfg: &KvecConfig, model: &mut KvecModel, path: &Path) -> CheckpointError {
    match Trainer::resume(cfg, model, path) {
        Ok(_) => panic!("corrupt checkpoint loaded successfully"),
        Err(e) => e,
    }
}

/// Trains briefly and writes a real checkpoint to corrupt.
fn pristine_checkpoint(dir: &Path) -> (KvecConfig, Vec<u8>, PathBuf) {
    let ds = dataset(4);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(8);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    trainer
        .train_epoch(&mut model, &ds.train, &mut rng)
        .unwrap();
    let path = dir.join("pristine.ckpt");
    trainer.save_checkpoint(&model, &rng, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (cfg, bytes, path)
}

#[test]
fn every_random_byte_flip_or_truncation_is_detected_at_load() {
    let dir = tmp_dir("byte-flips");
    let (cfg, pristine, _path) = pristine_checkpoint(&dir);
    let victim = dir.join("victim.ckpt");
    let mut model = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(1));
    let mut rng = KvecRng::seed_from_u64(2024);

    // The pristine file must load — otherwise the trials prove nothing.
    std::fs::write(&victim, &pristine).unwrap();
    Trainer::resume(&cfg, &mut model, &victim).expect("pristine checkpoint loads");

    for trial in 0..120 {
        std::fs::write(&victim, &pristine).unwrap();
        let offset = faults::flip_random_byte(&victim, &mut rng).unwrap();
        let res = Trainer::resume(&cfg, &mut model, &victim);
        assert!(
            res.is_err(),
            "trial {trial}: flip at byte {offset} loaded successfully"
        );
    }
    for trial in 0..30 {
        std::fs::write(&victim, &pristine).unwrap();
        let keep = rng.below(pristine.len());
        faults::truncate_file(&victim, keep).unwrap();
        let res = Trainer::resume(&cfg, &mut model, &victim);
        assert!(
            res.is_err(),
            "trial {trial}: truncation to {keep} bytes loaded successfully"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn each_corruption_mode_yields_its_own_readable_error() {
    let dir = tmp_dir("edge-cases");
    let (cfg, pristine, path) = pristine_checkpoint(&dir);
    let mut model = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(1));
    let mut load = |bytes: &[u8]| -> CheckpointError {
        std::fs::write(&path, bytes).unwrap();
        resume_err(&cfg, &mut model, &path)
    };

    // Zero-length file (crash before any byte hit the disk).
    let empty = load(b"");
    assert!(matches!(empty, CheckpointError::Empty), "{empty}");

    // Torn write: the tail of the payload is missing.
    let torn = load(&pristine[..pristine.len() - 7]);
    assert!(
        matches!(torn, CheckpointError::LengthMismatch { .. }),
        "{torn}"
    );

    // Foreign file: right extension, wrong content.
    let foreign = load(b"{\"not\": \"a checkpoint\"}");
    assert!(matches!(foreign, CheckpointError::BadMagic), "{foreign}");

    // Future container version.
    let text = String::from_utf8(pristine.clone()).unwrap();
    let future = load(text.replacen("KVECCKPT 1 ", "KVECCKPT 99 ", 1).as_bytes());
    assert!(
        matches!(
            future,
            CheckpointError::UnsupportedVersion { found: 99, .. }
        ),
        "{future}"
    );

    // Bit rot in the payload.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x10;
    let rot = load(&flipped);
    assert!(
        matches!(rot, CheckpointError::ChecksumMismatch { .. }),
        "{rot}"
    );

    // Every mode reads differently — an operator can tell them apart.
    let messages = [
        empty.to_string(),
        torn.to_string(),
        foreign.to_string(),
        future.to_string(),
        rot.to_string(),
    ];
    for (i, a) in messages.iter().enumerate() {
        assert!(!a.is_empty());
        for b in &messages[i + 1..] {
            assert_ne!(a, b, "two corruption modes share an error message");
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpoint_for_a_different_architecture_is_rejected() {
    let dir = tmp_dir("arch-mismatch");
    let (cfg, _pristine, path) = pristine_checkpoint(&dir);

    // Fewer parameters in the target model than in the checkpoint (and
    // vice versa): resume must fail with a parameter-level explanation,
    // not load a mangled model.
    for blocks in [2usize, 3] {
        let mut wrong = cfg.clone();
        wrong.n_blocks = blocks;
        let mut model = KvecModel::new(&wrong, &mut KvecRng::seed_from_u64(1));
        let err = resume_err(&wrong, &mut model, &path);
        let msg = err.to_string();
        assert!(
            matches!(err, CheckpointError::InvalidPayload(_)),
            "expected InvalidPayload, got {msg}"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn missing_checkpoint_file_is_an_io_error() {
    let dir = tmp_dir("missing");
    let ds = dataset(5);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut model = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(1));
    let err = resume_err(&cfg, &mut model, &dir.join("never-written.ckpt"));
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    std::fs::remove_dir_all(dir).ok();
}
