//! End-to-end contracts of the parallel backend: data-parallel training
//! and sharded evaluation must be deterministic, and the one-worker paths
//! must reproduce the serial implementations exactly.

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_tensor::{parallel, KvecRng};

fn dataset(seed: u64) -> Dataset {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = TrafficConfig {
        num_flows: 24,
        num_classes: 2,
        mean_len: 12,
        min_len: 10,
        max_len: 16,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    Dataset::from_pool("par", cfg.schema(), 2, pool, 4, &mut rng)
}

/// Trains for `epochs` with the given worker count and returns the final
/// model plus the per-epoch (loss, accuracy) trajectory.
fn train(ds: &Dataset, workers: usize, epochs: usize) -> (KvecModel, Vec<(f32, f32)>) {
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let mut rng = KvecRng::seed_from_u64(77);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    let mut trajectory = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let s = trainer
            .train_epoch_parallel(&mut model, &ds.train, &mut rng, workers)
            .unwrap();
        trajectory.push((s.loss, s.accuracy));
    }
    (model, trajectory)
}

#[test]
fn one_worker_reproduces_the_serial_trajectory() {
    let ds = dataset(1);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);

    // Serial reference: the plain per-scenario-step epoch loop.
    let mut rng = KvecRng::seed_from_u64(77);
    let mut serial_model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &serial_model);
    let mut serial_traj = Vec::new();
    for _ in 0..2 {
        let s = trainer
            .train_epoch(&mut serial_model, &ds.train, &mut rng)
            .unwrap();
        serial_traj.push((s.loss, s.accuracy));
    }

    let (par_model, par_traj) = train(&ds, 1, 2);
    assert_eq!(serial_traj, par_traj, "loss/accuracy trajectory diverged");
    for id in serial_model.store.ids() {
        assert_eq!(
            serial_model.store.value(id),
            par_model.store.value(id),
            "parameter {} diverged",
            serial_model.store.name(id)
        );
    }
}

#[test]
fn multi_worker_training_is_run_to_run_deterministic() {
    let ds = dataset(2);
    let (m1, t1) = train(&ds, 3, 2);
    let (m2, t2) = train(&ds, 3, 2);
    assert_eq!(t1, t2);
    for id in m1.store.ids() {
        assert_eq!(m1.store.value(id), m2.store.value(id));
    }
    assert!(!m1.store.has_non_finite());
}

#[test]
fn evaluation_is_thread_count_invariant() {
    let ds = dataset(3);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes);
    let model = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(5));

    let serial = parallel::with_threads(1, || evaluate(&model, &ds.test));
    for threads in [2usize, 4, 8] {
        let par = parallel::with_threads(threads, || evaluate(&model, &ds.test));
        assert_eq!(par.accuracy, serial.accuracy, "{threads} threads");
        assert_eq!(par.earliness, serial.earliness, "{threads} threads");
        assert_eq!(par.outcomes.len(), serial.outcomes.len());
        for (a, b) in par.outcomes.iter().zip(&serial.outcomes) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.pred, b.pred);
            assert_eq!(a.n_k, b.n_k);
        }
    }
}
