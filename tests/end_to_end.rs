//! End-to-end pipeline tests: data generation -> training -> evaluation,
//! across crates.

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_tensor::KvecRng;

fn small_traffic(seed: u64, num_flows: usize) -> Dataset {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = TrafficConfig {
        num_flows,
        num_classes: 3,
        mean_len: 14,
        min_len: 10,
        max_len: 20,
        sig_noise: 0.02,
        // Fully class-specific signatures: this suite tests the learning
        // machinery, not the hardness of the shared-handshake variant.
        shared_prefix: 0,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    Dataset::from_pool("e2e", cfg.schema(), 3, pool, 4, &mut rng)
}

fn trained_model(ds: &Dataset, beta: f32, epochs: usize, seed: u64) -> KvecModel {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = KvecConfig::tiny(&ds.schema, ds.num_classes).with_beta(beta);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    for _ in 0..epochs {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .unwrap();
    }
    model
}

#[test]
fn kvec_beats_chance_after_training() {
    let ds = small_traffic(1, 60);
    let model = trained_model(&ds, 0.1, 12, 2);
    let report = evaluate(&model, &ds.test);
    // 3 classes => chance is 1/3; trained KVEC must clearly beat it.
    assert!(
        report.accuracy > 0.5,
        "accuracy {} barely above chance",
        report.accuracy
    );
    assert!(report.earliness > 0.0 && report.earliness <= 1.0);
    assert!(!model.store.has_non_finite());
}

#[test]
fn beta_trades_earliness_for_observation() {
    let ds = small_traffic(3, 48);
    let eager = evaluate(&trained_model(&ds, 1.0, 8, 4), &ds.test).earliness;
    let patient = evaluate(&trained_model(&ds, -0.05, 8, 4), &ds.test).earliness;
    assert!(
        eager < patient,
        "beta=1.0 earliness {eager} should be below beta=-0.05 earliness {patient}"
    );
}

#[test]
fn correlations_help_on_tangled_data() {
    // With heavy signature noise, a single flow's own prefix is ambiguous;
    // cross-flow correlations should not hurt and typically help.
    let ds = small_traffic(5, 60);
    let full = evaluate(&trained_model(&ds, 0.05, 12, 6), &ds.test);

    let mut rng = KvecRng::seed_from_u64(6);
    let mut cfg = KvecConfig::tiny(&ds.schema, ds.num_classes).with_beta(0.05);
    cfg.use_key_correlation = false;
    cfg.use_value_correlation = false;
    let mut ablated = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &ablated);
    for _ in 0..12 {
        trainer
            .train_epoch(&mut ablated, &ds.train, &mut rng)
            .unwrap();
    }
    let bare = evaluate(&ablated, &ds.test);

    // The fully ablated model treats every item in isolation. On this
    // trivially separable data (noise-free per-flow signatures) the
    // cross-sequence context cannot add signal, so the check is a sanity
    // bound: correlations must not be *catastrophic*. The figure harness
    // (fig9_ablation) probes the regime where they genuinely help.
    assert!(
        full.hm >= bare.hm - 0.2,
        "full KVEC hm {} catastrophically below ablated hm {}",
        full.hm,
        bare.hm
    );
}

#[test]
fn evaluation_covers_all_test_keys_exactly_once() {
    let ds = small_traffic(7, 40);
    let model = trained_model(&ds, 0.1, 2, 8);
    let report = evaluate(&model, &ds.test);
    let expected: usize = ds.test.iter().map(|t| t.num_keys()).sum();
    assert_eq!(report.outcomes.len(), expected);
    let mut keys: Vec<_> = report.outcomes.iter().map(|o| o.key).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), expected, "duplicate key outcome");
}
