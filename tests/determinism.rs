//! Reproducibility contracts: everything downstream of a seed is
//! bit-stable, and dataset persistence round-trips.

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel};
use kvec_data::synth::{generate_movielens, generate_traffic, MovieLensConfig, TrafficConfig};
use kvec_data::{io, Dataset};
use kvec_tensor::KvecRng;

fn pipeline(seed: u64) -> (f32, f32) {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = TrafficConfig {
        num_flows: 30,
        num_classes: 2,
        mean_len: 12,
        min_len: 10,
        max_len: 14,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    let ds = Dataset::from_pool("det", cfg.schema(), 2, pool, 4, &mut rng);
    let mcfg = KvecConfig::tiny(&ds.schema, 2);
    let mut model = KvecModel::new(&mcfg, &mut rng);
    let mut trainer = Trainer::new(&mcfg, &model);
    for _ in 0..3 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .unwrap();
    }
    let r = evaluate(&model, &ds.test);
    (r.accuracy, r.earliness)
}

#[test]
fn whole_pipeline_is_seed_deterministic() {
    assert_eq!(pipeline(123), pipeline(123));
}

#[test]
fn different_seeds_give_different_runs() {
    // Not a hard guarantee, but with different data + init + episodes the
    // probability of identical metrics is negligible.
    let a = pipeline(1);
    let b = pipeline(2);
    assert!(a != b, "suspiciously identical runs across seeds");
}

#[test]
fn dataset_persistence_round_trips_through_json() {
    let mut rng = KvecRng::seed_from_u64(9);
    let cfg = MovieLensConfig::movielens_1m(20).scaled_len(0.2);
    let pool = generate_movielens(&cfg, &mut rng);
    let ds = Dataset::from_pool("persist", cfg.schema(), 2, pool, 4, &mut rng);

    let dir = std::env::temp_dir().join("kvec-integration-io");
    let path = dir.join("ds.json");
    io::save_dataset(&ds, &path).expect("save");
    let back = io::load_dataset(&path).expect("load");
    assert_eq!(ds.name, back.name);
    assert_eq!(ds.num_classes, back.num_classes);
    assert_eq!(ds.total_items(), back.total_items());
    assert_eq!(ds.train.len(), back.train.len());
    // Item-level equality on one scenario.
    assert_eq!(ds.train[0], back.train[0]);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn loaded_dataset_trains_identically_to_original() {
    let mut rng = KvecRng::seed_from_u64(21);
    let cfg = TrafficConfig {
        num_flows: 16,
        num_classes: 2,
        mean_len: 11,
        min_len: 10,
        max_len: 12,
        ..TrafficConfig::traffic_fg(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    let ds = Dataset::from_pool("reload", cfg.schema(), 2, pool, 4, &mut rng);

    let dir = std::env::temp_dir().join("kvec-integration-io2");
    let path = dir.join("ds.json");
    io::save_dataset(&ds, &path).expect("save");
    let loaded = io::load_dataset(&path).expect("load");
    std::fs::remove_dir_all(dir).ok();

    let run = |d: &Dataset| {
        let mut rng = KvecRng::seed_from_u64(5);
        let mcfg = KvecConfig::tiny(&d.schema, 2);
        let mut model = KvecModel::new(&mcfg, &mut rng);
        let mut trainer = Trainer::new(&mcfg, &model);
        trainer.train_epoch(&mut model, &d.train, &mut rng).unwrap();
        evaluate(&model, &d.test).accuracy
    };
    assert_eq!(run(&ds), run(&loaded));
}
