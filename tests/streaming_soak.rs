//! Long-stream soak: the windowed streaming engine must hold resident KV
//! cache memory flat — O(live span), not O(stream length) — over 100k+
//! arrivals while emitting decisions bit-identical to the unbounded
//! (drop-only) engine on the same stream.
//!
//! Ignored by default (it feeds >200k items across two engines); CI runs
//! it in release as a dedicated soak leg:
//!
//! ```text
//! cargo test --release -q --test streaming_soak -- --ignored
//! ```

use kvec::streaming::{Decision, StreamingEngine};
use kvec::{KvecConfig, KvecModel};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::{mixer, Item, Key};
use kvec_obs::{self as obs, Config, Level, SinkConfig};
use kvec_tensor::KvecRng;

const GROUPS: usize = 520;
const FLOWS_PER_GROUP: usize = 8;

/// One long stream of `GROUPS` independently tangled traffic groups with
/// globally distinct keys, plus the per-group key sets (each group's keys
/// are force-halted when the group ends — flow-end retirement, the signal
/// that lets the eviction horizon advance).
fn soak_stream() -> (Vec<Item>, Vec<Vec<Key>>) {
    let mut items = Vec::new();
    let mut group_keys = Vec::new();
    for g in 0..GROUPS {
        let mut rng = KvecRng::seed_from_u64(1000 + g as u64);
        let dcfg = TrafficConfig {
            num_flows: FLOWS_PER_GROUP,
            num_classes: 2,
            mean_len: 25,
            min_len: 20,
            max_len: 30,
            ..TrafficConfig::traffic_app(0)
        };
        let pool = generate_traffic(&dcfg, &mut rng);
        let mut tangled = mixer::tangle_group(&pool, &mut rng);
        let offset = (g * FLOWS_PER_GROUP) as u64;
        let mut keys: Vec<Key> = Vec::new();
        for item in &mut tangled.items {
            item.key = Key(item.key.0 + offset);
            if !keys.contains(&item.key) {
                keys.push(item.key);
            }
        }
        items.extend(tangled.items);
        group_keys.push(keys);
    }
    (items, group_keys)
}

struct SoakRun {
    decisions: Vec<Decision>,
    max_resident: usize,
    evicted: usize,
    dropped: usize,
}

fn drive(
    mut engine: StreamingEngine,
    items: &[Item],
    group_keys: &[Vec<Key>],
    group_ends: &[usize],
) -> SoakRun {
    let mut decisions = Vec::new();
    let mut max_resident = 0usize;
    let mut next_group = 0usize;
    for (pos, item) in items.iter().enumerate() {
        if let Some(d) = engine.feed(item).expect("soak engine cannot fault") {
            decisions.push(d);
        }
        max_resident = max_resident.max(engine.cache_rows());
        if pos + 1 == group_ends[next_group] {
            // Group over: every flow in it has ended; force-classify the
            // stragglers so their rows become evictable.
            for &key in &group_keys[next_group] {
                if let Some(d) = engine.halt_key(key).expect("group key was fed") {
                    decisions.push(d);
                }
            }
            next_group += 1;
        }
    }
    decisions.extend(engine.finish());
    SoakRun {
        decisions,
        max_resident,
        evicted: engine.evicted_rows(),
        dropped: engine.halted_feed_drops(),
    }
}

#[test]
#[ignore = "long soak; run via the CI soak leg or --ignored"]
fn windowed_cache_stays_flat_over_100k_arrivals() {
    let (items, group_keys) = soak_stream();
    assert!(
        items.len() >= 100_000,
        "soak stream too short: {}",
        items.len()
    );
    let mut group_ends = Vec::with_capacity(GROUPS);
    let mut acc = 0usize;
    let mut max_group_len = 0usize;
    for keys in &group_keys {
        // Per-group item count: contiguous slice layout by construction.
        let len = items[acc..]
            .iter()
            .take_while(|i| keys.contains(&i.key))
            .count();
        acc += len;
        max_group_len = max_group_len.max(len);
        group_ends.push(acc);
    }
    assert_eq!(acc, items.len(), "groups must partition the stream");

    let mut rng = KvecRng::seed_from_u64(7);
    let dcfg = TrafficConfig {
        num_flows: FLOWS_PER_GROUP,
        num_classes: 2,
        ..TrafficConfig::traffic_app(0)
    };
    let cfg = KvecConfig::tiny(&dcfg.schema(), 2);
    let model = KvecModel::new(&cfg, &mut rng);

    // Reference pass with observability off, so the shared gauges only
    // see the windowed engine.
    obs::configure(Config {
        enabled: false,
        level: Level::Info,
        sink: SinkConfig::Stderr,
    });
    let reference = StreamingEngine::new(&model).with_halted_feed_dropping();
    let ref_run = drive(reference, &items, &group_keys, &group_ends);

    obs::configure(Config {
        enabled: true,
        level: Level::Info,
        sink: SinkConfig::Memory,
    });
    obs::reset();
    let windowed = StreamingEngine::new(&model).with_windowed_cache();
    let win_run = drive(windowed, &items, &group_keys, &group_ends);

    // Flat memory: residency is bounded by the live span (one group) plus
    // the compaction hysteresis slack — two orders of magnitude below the
    // stream length.
    let bound = 2 * max_group_len + 128;
    assert!(
        win_run.max_resident <= bound,
        "resident rows {} exceed the live-span bound {bound} (stream length {})",
        win_run.max_resident,
        items.len()
    );
    // The same bound must be visible operationally through the gauge.
    let gauge_high_water = obs::metrics::gauge("stream.cache_rows").high_water() as usize;
    assert!(
        gauge_high_water <= bound && gauge_high_water > 0,
        "stream.cache_rows high-water {gauge_high_water} out of range"
    );
    // Every arrival is accounted for: it either entered the cache and was
    // eventually evicted (finish flushes the remainder) or was dropped as
    // a halted-key feed. The policy halts most flows after a few items, so
    // drops dominate — but evicted + dropped must cover the whole stream.
    let gauge_evicted = obs::metrics::gauge("stream.evicted_rows").get() as usize;
    assert_eq!(
        gauge_evicted, win_run.evicted,
        "gauge disagrees with engine"
    );
    assert_eq!(
        win_run.evicted + win_run.dropped,
        items.len(),
        "eviction must keep pace with the stream"
    );
    assert!(win_run.evicted > 0, "soak must actually evict");
    assert_eq!(ref_run.dropped, win_run.dropped);
    assert_eq!(ref_run.evicted, 0, "reference engine never evicts");

    // Decisions are bit-identical to the unbounded reference.
    assert_eq!(ref_run.decisions.len(), win_run.decisions.len());
    assert_eq!(ref_run.decisions.len(), GROUPS * FLOWS_PER_GROUP);
    for (a, b) in ref_run.decisions.iter().zip(&win_run.decisions) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.pred, b.pred);
        assert_eq!(a.n_items, b.n_items);
        assert_eq!(a.global_pos, b.global_pos);
        assert_eq!(a.halted_by_policy, b.halted_by_policy);
        let bits = |p: &[f32]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.probs), bits(&b.probs));
    }
    obs::configure(Config {
        enabled: false,
        level: Level::Info,
        sink: SinkConfig::Stderr,
    });
}
