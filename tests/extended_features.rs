//! Integration tests of the extension surface: cross-validation, extended
//! metrics, checkpointing, multi-head + layer-norm variants, and clustered
//! tangling — the features beyond the paper's minimal scope.

use kvec::cv::cross_validate;
use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel, StreamingEngine};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::{mixer, Dataset};
use kvec_tensor::KvecRng;

fn data_cfg(num_flows: usize) -> TrafficConfig {
    TrafficConfig {
        num_flows,
        num_classes: 3,
        mean_len: 12,
        min_len: 10,
        max_len: 16,
        shared_prefix: 0,
        ..TrafficConfig::traffic_fg(0)
    }
}

#[test]
fn cross_validation_covers_every_key_once() {
    let mut rng = KvecRng::seed_from_u64(1);
    let dcfg = data_cfg(30);
    let pool = generate_traffic(&dcfg, &mut rng);
    let cfg = KvecConfig::tiny(&dcfg.schema(), 3);
    let report = cross_validate(&cfg, &pool, 5, 4, 1, &mut rng);
    assert_eq!(report.folds.len(), 5);
    let tested: usize = report.folds.iter().map(|f| f.outcomes.len()).sum();
    assert_eq!(tested, 30);
    assert!(report.accuracy.std >= 0.0);
    assert!((0.0..=1.0).contains(&report.hm.mean));
}

#[test]
fn confusion_matrix_agrees_with_report_accuracy() {
    let mut rng = KvecRng::seed_from_u64(2);
    let dcfg = data_cfg(40);
    let pool = generate_traffic(&dcfg, &mut rng);
    let ds = Dataset::from_pool("m", dcfg.schema(), 3, pool, 4, &mut rng);
    let cfg = KvecConfig::tiny(&ds.schema, 3);
    let mut rng2 = KvecRng::seed_from_u64(3);
    let mut model = KvecModel::new(&cfg, &mut rng2);
    let mut trainer = Trainer::new(&cfg, &model);
    for _ in 0..4 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng2)
            .unwrap();
    }
    let report = evaluate(&model, &ds.test);
    let cm = report.confusion_matrix(3);
    assert_eq!(cm.total(), report.outcomes.len());
    assert!((cm.accuracy() - report.accuracy).abs() < 1e-6);
    let per_class = cm.per_class();
    assert_eq!(per_class.len(), 3);
    let support: usize = per_class.iter().map(|c| c.support).sum();
    assert_eq!(support, report.outcomes.len());
}

#[test]
fn multihead_layernorm_variant_trains_and_checkpoints() {
    let mut rng = KvecRng::seed_from_u64(4);
    let dcfg = data_cfg(24);
    let pool = generate_traffic(&dcfg, &mut rng);
    let ds = Dataset::from_pool("mh", dcfg.schema(), 3, pool, 4, &mut rng);
    let mut cfg = KvecConfig::tiny(&ds.schema, 3);
    cfg.n_heads = 4;
    cfg.use_layer_norm = true;
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    for _ in 0..3 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .unwrap();
    }
    assert!(!model.store.has_non_finite());
    let before = evaluate(&model, &ds.test);

    // Checkpoint round trip preserves behavior, including streaming.
    let dir = std::env::temp_dir().join("kvec-extended-ckpt");
    let path = dir.join("w.json");
    model.save_weights(&path).unwrap();
    let mut restored = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(777));
    restored.load_weights(&path).unwrap();
    std::fs::remove_dir_all(dir).ok();
    let after = evaluate(&restored, &ds.test);
    assert_eq!(before.accuracy, after.accuracy);
    assert_eq!(before.earliness, after.earliness);

    let a = StreamingEngine::run(&model, &ds.test[0]);
    let b = StreamingEngine::run(&restored, &ds.test[0]);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.key, x.pred, x.n_items), (y.key, y.pred, y.n_items));
    }
}

#[test]
fn clustered_tangling_trains_end_to_end() {
    let mut rng = KvecRng::seed_from_u64(5);
    let dcfg = data_cfg(36);
    let pool = generate_traffic(&dcfg, &mut rng);
    let ds = Dataset::from_pool_clustered("cl", dcfg.schema(), 3, pool, 6, 2, &mut rng);
    // Every scenario spans at most 2 classes.
    for sc in ds.train.iter().chain(&ds.val).chain(&ds.test) {
        let classes: std::collections::BTreeSet<usize> =
            sc.labels.iter().map(|&(_, l)| l).collect();
        assert!(classes.len() <= 2);
    }
    let cfg = KvecConfig::tiny(&ds.schema, 3);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    let stats = trainer
        .train_epoch(&mut model, &ds.train, &mut rng)
        .unwrap();
    assert!(stats.num_keys > 0);
    assert!(!model.store.has_non_finite());
}

#[test]
fn clustered_and_plain_tangling_share_the_key_universe() {
    let mut rng = KvecRng::seed_from_u64(6);
    let dcfg = data_cfg(30);
    let pool = generate_traffic(&dcfg, &mut rng);
    let mut rng_a = KvecRng::seed_from_u64(7);
    let plain = mixer::tangle_scenarios(&pool, 5, &mut rng_a);
    let mut rng_b = KvecRng::seed_from_u64(7);
    let clustered = mixer::tangle_scenarios_clustered(&pool, 5, 2, &mut rng_b);
    let keys = |scs: &[kvec_data::TangledSequence]| {
        scs.iter()
            .flat_map(|t| t.labels.iter().map(|&(k, _)| k.0))
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(keys(&plain), keys(&clustered));
}
