//! Guard: the workspace must stay buildable with zero crates.io access.
//!
//! Every dependency in every manifest must resolve inside the repository
//! (path dependencies or `workspace = true` pointers at path
//! dependencies), and the lockfile must contain no registry sources. This
//! is the contract that makes `cargo build --offline` work on a machine
//! that has never seen a crates.io index — see DESIGN.md "Dependencies".

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root here.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("read crates/") {
        let m = entry.unwrap().path().join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    assert!(
        out.len() >= 8,
        "expected the full crate family, got {out:?}"
    );
    out
}

/// Returns the `(section, line)` pairs of dependency declarations in a
/// manifest: every non-comment line of a `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]` or
/// `[workspace.dependencies]` section.
fn dependency_lines(toml: &str) -> Vec<(String, String)> {
    let mut section = String::new();
    let mut out = Vec::new();
    for raw in toml.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let is_dep_section = section == "workspace.dependencies"
            || section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section.ends_with(".dependencies");
        if is_dep_section {
            out.push((section.clone(), line.to_string()));
        }
    }
    out
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let root = workspace_root();
    for manifest in manifests(&root) {
        let toml = fs::read_to_string(&manifest).unwrap();
        for (section, line) in dependency_lines(&toml) {
            let in_repo = line.contains("path = \"")
                || line.contains(".workspace = true")
                || line.contains("workspace = true");
            assert!(
                in_repo,
                "{}: [{section}] declares a non-path dependency: `{line}`\n\
                 The workspace is zero-dependency by policy; vendor the \
                 functionality in-tree instead (DESIGN.md, Dependencies).",
                manifest.display()
            );
            assert!(
                !line.contains("version = \"") || line.contains("path = \""),
                "{}: [{section}] pins a registry version: `{line}`",
                manifest.display()
            );
            assert!(
                !line.contains("git = \""),
                "{}: [{section}] declares a git dependency: `{line}`",
                manifest.display()
            );
        }
    }
}

#[test]
fn lockfile_has_no_registry_sources() {
    let lock = fs::read_to_string(workspace_root().join("Cargo.lock"))
        .expect("Cargo.lock must be committed");
    for line in lock.lines() {
        assert!(
            !line.trim_start().starts_with("source ="),
            "Cargo.lock references an external source: `{line}`"
        );
        assert!(
            !line.trim_start().starts_with("checksum ="),
            "Cargo.lock carries a registry checksum: `{line}`"
        );
    }
    assert!(
        lock.contains("name = \"kvec-tensor\""),
        "lockfile should still cover the workspace crates"
    );
}

#[test]
fn workspace_members_cover_the_vendored_substrate() {
    // The vendored JSON codec and property-test harness must stay inside
    // the workspace (a stray exclusion would silently reintroduce the
    // registry the first time someone depends on them).
    let toml = fs::read_to_string(workspace_root().join("Cargo.toml")).unwrap();
    for member in ["crates/json", "crates/check"] {
        assert!(
            toml.contains(&format!("\"{member}\"")),
            "workspace members must include {member}"
        );
    }
}
