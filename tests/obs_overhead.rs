//! Enforces the observability overhead contract: with the subscriber
//! disabled, instrumentation must cost <2% of a `train_epoch`.
//!
//! Timing two full epoch runs against each other is hopeless on a noisy
//! shared CI core — run-to-run variance of an epoch easily exceeds 2%.
//! Instead the test bounds the overhead analytically from two quantities
//! it can measure reliably:
//!
//! 1. the per-gate cost of the disabled fast path (one relaxed atomic
//!    load + branch), timed over millions of iterations;
//! 2. the number of instrumentation gates one epoch actually passes
//!    through, counted exactly by running the same epoch once with
//!    metrics enabled and reading back the call counters.
//!
//! `gates x cost_per_gate` (with a generous 8x multiplier for sites that
//! check more than once) must stay under 2% of the measured epoch time.

use kvec::train::Trainer;
use kvec::{KvecConfig, KvecModel};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_obs::{self as obs, Config, LazyCounter, Level, SinkConfig};
use kvec_tensor::KvecRng;
use std::hint::black_box;
use std::time::Instant;

fn dataset() -> Dataset {
    let mut rng = KvecRng::seed_from_u64(21);
    let cfg = TrafficConfig {
        num_flows: 16,
        num_classes: 2,
        mean_len: 10,
        min_len: 8,
        max_len: 14,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    Dataset::from_pool("ovh", cfg.schema(), 2, pool, 4, &mut rng)
}

fn one_epoch(ds: &Dataset) {
    // Paper-shaped width (as in the quickstart), not the test-suite tiny
    // model: the contract is about realistic epochs, where each gated
    // kernel call does d_model^2-scale work. On a toy-width model the
    // gate:work ratio is pessimistically inflated.
    let mut cfg = KvecConfig::for_schema(&ds.schema, ds.num_classes);
    cfg.d_model = 32;
    cfg.fusion_hidden = 32;
    cfg.d_ff = 64;
    let mut rng = KvecRng::seed_from_u64(9);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    trainer
        .train_epoch(&mut model, &ds.train, &mut rng)
        .expect("epoch");
}

static PROBE: LazyCounter = LazyCounter::new("test.overhead.probe");

/// Nanoseconds per disabled gate (enabled-flag load + branch), averaged
/// over many calls of the two primitives every instrumentation site uses.
fn disabled_gate_ns() -> f64 {
    assert!(!obs::enabled(), "probe must run with the subscriber off");
    const M: u64 = 2_000_000;
    let t0 = Instant::now();
    for _ in 0..M {
        black_box(obs::timer());
        PROBE.add(1);
    }
    // Two gates per iteration: the timer check and the counter check.
    t0.elapsed().as_secs_f64() * 1e9 / (2.0 * M as f64)
}

/// Counts the instrumentation gates one epoch passes through: every
/// call-shaped counter plus every histogram record, read from the
/// metrics summary of an epoch run with aggregation on.
fn gates_per_epoch(ds: &Dataset) -> f64 {
    obs::configure(Config {
        enabled: true,
        level: Level::Error, // no event/span output, metrics still aggregate
        sink: SinkConfig::Null,
    });
    obs::reset();
    one_epoch(ds);
    let summary = kvec_obs::export::metrics_summary();
    obs::configure(Config {
        enabled: false,
        level: Level::Info,
        sink: SinkConfig::Null,
    });

    let counters = summary.get("counters").and_then(|c| c.as_obj()).unwrap();
    let call_like: f64 = counters
        .iter()
        .filter(|(k, _)| k.ends_with(".calls") || k.starts_with("stream."))
        .map(|(_, v)| v.as_f64().unwrap())
        .sum();
    let hists = summary.get("histograms").and_then(|h| h.as_obj()).unwrap();
    let recorded: f64 = hists
        .iter()
        .map(|(_, h)| h.get("count").and_then(|c| c.as_f64()).unwrap())
        .sum();
    assert!(
        call_like >= 1.0 && recorded >= 1.0,
        "epoch must hit instrumented sites (calls {call_like}, records {recorded})"
    );
    call_like + recorded
}

#[test]
fn disabled_instrumentation_costs_under_two_percent_of_an_epoch() {
    let ds = dataset();
    let gates = gates_per_epoch(&ds);

    assert!(!obs::enabled());
    let gate_ns = disabled_gate_ns();

    // Epoch wall-clock with observability off: best of 3 to shed noise.
    let mut epoch_ns = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        one_epoch(&ds);
        epoch_ns = epoch_ns.min(t0.elapsed().as_secs_f64() * 1e9);
    }

    // 8x: sites gate more than once (timer + record, span enter + exit)
    // and the multiplier keeps the bound honest for future sites.
    let overhead_ns = 8.0 * gates * gate_ns;
    let fraction = overhead_ns / epoch_ns;
    println!(
        "gates/epoch {gates:.0}, {gate_ns:.2} ns/gate, epoch {:.2} ms, \
         bound {:.4}% (limit 2%)",
        epoch_ns / 1e6,
        fraction * 100.0
    );
    assert!(
        fraction < 0.02,
        "disabled observability overhead bound {:.3}% exceeds 2%",
        fraction * 100.0
    );
}
