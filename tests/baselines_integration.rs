//! All four baselines must run through the shared `EarlyClassifier` trait
//! on the same data KVEC trains on — the contract the figure harness
//! relies on.

use kvec_baselines::{
    BaselineConfig, Earliest, EarlyClassifier, SrnConfidence, SrnEarliest, SrnFixed,
};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::{Dataset, TangledSequence};
use kvec_tensor::KvecRng;

fn dataset(seed: u64) -> Dataset {
    dataset_sized(seed, 30)
}

fn dataset_sized(seed: u64, num_flows: usize) -> Dataset {
    let mut rng = KvecRng::seed_from_u64(seed);
    let cfg = TrafficConfig {
        num_flows,
        num_classes: 2,
        mean_len: 12,
        min_len: 10,
        max_len: 16,
        sig_noise: 0.0,
        ..TrafficConfig::traffic_app(0)
    };
    let pool = generate_traffic(&cfg, &mut rng);
    Dataset::from_pool("bl", cfg.schema(), 2, pool, 4, &mut rng)
}

fn all_methods(cfg: &BaselineConfig, rng: &mut KvecRng) -> Vec<Box<dyn EarlyClassifier>> {
    vec![
        Box::new(Earliest::new(cfg, rng)),
        Box::new(SrnEarliest::new(cfg, rng)),
        Box::new(SrnFixed::new(cfg, rng)),
        Box::new(SrnConfidence::new(cfg, rng)),
    ]
}

#[test]
fn every_baseline_trains_and_reports_through_the_trait() {
    let ds = dataset(1);
    let cfg = BaselineConfig::tiny(&ds.schema, 2);
    let mut rng = KvecRng::seed_from_u64(2);
    let n_test: usize = ds.test.iter().map(TangledSequence::num_keys).sum();

    for mut method in all_methods(&cfg, &mut rng) {
        let loss = method.train_epoch(&ds.train, &mut rng);
        assert!(loss.is_finite(), "{} loss not finite", method.name());
        let report = method.evaluate(&ds.test);
        assert_eq!(
            report.outcomes.len(),
            n_test,
            "{} missed test keys",
            method.name()
        );
        assert!((0.0..=1.0).contains(&report.accuracy), "{}", method.name());
        assert!(
            report.earliness > 0.0 && report.earliness <= 1.0,
            "{} earliness {}",
            method.name(),
            report.earliness
        );
        for o in &report.outcomes {
            assert!(o.n_k >= 1 && o.n_k <= o.seq_len, "{}", method.name());
        }
    }
}

#[test]
fn baselines_learn_the_noiseless_signatures() {
    // With zero signature noise the task is easy; after a few epochs every
    // trainable baseline should beat chance (0.5) clearly. The pool is
    // larger here (6 test keys, mixed classes) so the assertion measures
    // learnability rather than the class composition of a 3-key split —
    // at 30 flows a one-class test split can zero out accuracy for the
    // RL-halting methods regardless of what they learned.
    let ds = dataset_sized(3, 60);
    let cfg = BaselineConfig::tiny(&ds.schema, 2).with_lambda(0.05);
    let mut rng = KvecRng::seed_from_u64(4);
    for mut method in all_methods(&cfg, &mut rng) {
        for _ in 0..10 {
            method.train_epoch(&ds.train, &mut rng);
        }
        let report = method.evaluate(&ds.test);
        assert!(
            report.accuracy >= 0.6,
            "{} accuracy {} after training",
            method.name(),
            report.accuracy
        );
    }
}

#[test]
fn baseline_names_are_the_paper_names() {
    let ds = dataset(5);
    let cfg = BaselineConfig::tiny(&ds.schema, 2);
    let mut rng = KvecRng::seed_from_u64(6);
    let names: Vec<&str> = all_methods(&cfg, &mut rng)
        .iter()
        .map(|m| m.name())
        .collect();
    assert_eq!(
        names,
        vec!["EARLIEST", "SRN-EARLIEST", "SRN-Fixed", "SRN-Confidence"]
    );
}
