//! Chaos suite for the sharded serving runtime (`kvec-serve`).
//!
//! Every test drives the *production* worker loop — faults are armed
//! through [`ServeChaos`] and interpreted by the same code that serves
//! real traffic. The invariants:
//!
//! - **Determinism**: fault-free (and kill-only) runs produce per-shard
//!   decision streams bit-identical to a single-threaded
//!   [`StreamingEngine`] fed the shard's item subsequence.
//! - **Accounting**: after shutdown, every submitted arrival has exactly
//!   one disposition — `submitted == shed + processed + late_drops +
//!   engine_rejected + quarantined`.
//! - **Exactly-once**: no key ever receives two decisions, across load
//!   shedding, deadline storms, worker crashes, and respawn replay.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use kvec::streaming::{Decision, StreamingEngine};
use kvec::{KvecConfig, KvecModel, ServeChaos};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::{mixer, Item, Key};
use kvec_serve::{shard_of_key, QuarantineRecord, ServeConfig, ServeStats, ShardedService};
use kvec_tensor::KvecRng;

const SHARDS: usize = 4;

fn traffic_cfg() -> TrafficConfig {
    TrafficConfig {
        num_flows: 6,
        num_classes: 2,
        mean_len: 25,
        min_len: 20,
        max_len: 30,
        ..TrafficConfig::traffic_app(0)
    }
}

/// A tangled stream of `groups` independently mixed traffic groups with
/// globally distinct keys (same construction as the streaming soak).
fn stream(groups: usize) -> Vec<Item> {
    let dcfg = traffic_cfg();
    let mut items = Vec::new();
    for g in 0..groups {
        let mut rng = KvecRng::seed_from_u64(4000 + g as u64);
        let pool = generate_traffic(&dcfg, &mut rng);
        let mut tangled = mixer::tangle_group(&pool, &mut rng);
        let offset = (g * dcfg.num_flows) as u64;
        for item in &mut tangled.items {
            item.key = Key(item.key.0 + offset);
        }
        items.extend(tangled.items);
    }
    items
}

/// Fresh model from a fixed seed: two calls give bit-identical weights,
/// which is how the service and the reference engine share a model.
fn model() -> KvecModel {
    let cfg = KvecConfig::tiny(&traffic_cfg().schema(), 2);
    KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(77))
}

/// A ServeConfig that cannot shed: queues hold the whole stream.
fn no_shed_config(stream_len: usize) -> ServeConfig {
    let cap = stream_len.max(16);
    ServeConfig {
        shards: SHARDS,
        queue_capacity: cap,
        delay_watermark: cap,
        shed_watermark: cap,
        ..ServeConfig::default()
    }
}

/// Single-threaded per-shard reference: each shard's item subsequence
/// fed, in submission order, to an engine with the worker's exact guard
/// configuration, then `finish()`ed.
fn reference_decisions(items: &[Item]) -> Vec<Vec<Decision>> {
    let model = model();
    (0..SHARDS)
        .map(|s| {
            let mut engine = StreamingEngine::new(&model)
                .with_halted_feed_dropping()
                .with_windowed_cache();
            let mut out = Vec::new();
            for item in items.iter().filter(|i| shard_of_key(i.key, SHARDS) == s) {
                if let Some(d) = engine.feed(item).expect("reference cannot fault") {
                    out.push(d);
                }
            }
            out.extend(engine.finish());
            out
        })
        .collect()
}

fn by_shard(decisions: Vec<Decision>) -> Vec<Vec<Decision>> {
    let mut per: Vec<Vec<Decision>> = (0..SHARDS).map(|_| Vec::new()).collect();
    for d in decisions {
        per[shard_of_key(d.key, SHARDS)].push(d);
    }
    per
}

fn assert_bit_identical(got: &[Vec<Decision>], want: &[Vec<Decision>]) {
    let bits = |p: &[f32]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for s in 0..SHARDS {
        assert_eq!(
            got[s].len(),
            want[s].len(),
            "shard {s}: decision count diverged"
        );
        for (a, b) in got[s].iter().zip(&want[s]) {
            assert_eq!(a.key, b.key, "shard {s}: decision order diverged");
            assert_eq!(a.pred, b.pred);
            assert_eq!(a.n_items, b.n_items);
            assert_eq!(a.global_pos, b.global_pos);
            assert_eq!(a.halted_by_policy, b.halted_by_policy);
            assert_eq!(bits(&a.probs), bits(&b.probs), "shard {s}: probs drifted");
        }
    }
}

fn assert_exactly_once(decisions: &[Decision]) {
    let mut seen = BTreeSet::new();
    for d in decisions {
        assert!(seen.insert(d.key), "key {:?} decided twice", d.key);
    }
}

fn assert_accounting(stats: &ServeStats) {
    assert_eq!(
        stats.submitted,
        stats.arrivals_accounted(),
        "arrival accounting leak: {stats:?}"
    );
}

fn unique_keys(items: &[Item]) -> BTreeSet<Key> {
    items.iter().map(|i| i.key).collect()
}

#[test]
fn fault_free_run_is_bit_identical_to_single_threaded_shards() {
    let items = stream(8);
    let svc = ShardedService::start(model(), no_shed_config(items.len()));
    for item in &items {
        assert!(
            svc.submit(item.clone()).is_admitted(),
            "nothing may shed below the watermarks"
        );
    }
    let report = svc.shutdown();

    assert_accounting(&report.stats);
    assert_eq!(report.stats.submitted, items.len() as u64);
    assert_eq!(report.stats.shed_total(), 0);
    assert_eq!(report.stats.worker_restarts, 0);
    assert_eq!(report.stats.forced_halts, 0);
    assert_eq!(
        report.stats.processed + report.stats.late_drops,
        items.len() as u64
    );
    assert_exactly_once(&report.decisions);
    assert_eq!(
        report.decisions.len(),
        unique_keys(&items).len(),
        "every fed key decides exactly once"
    );
    assert_bit_identical(&by_shard(report.decisions), &reference_decisions(&items));
}

#[test]
fn killed_worker_respawns_replays_and_loses_nothing() {
    let items = stream(8);
    // Kill the busiest shard's worker right before its 6th arrival.
    let mut load = [0usize; SHARDS];
    for item in &items {
        load[shard_of_key(item.key, SHARDS)] += 1;
    }
    let victim = (0..SHARDS).max_by_key(|&s| load[s]).unwrap();
    assert!(load[victim] > 6, "victim shard must still have work to do");
    let chaos = ServeChaos::new().kill_worker_at(victim, 5);

    let svc = ShardedService::with_chaos(model(), no_shed_config(items.len()), chaos);
    for item in &items {
        assert!(svc.submit(item.clone()).is_admitted());
    }
    let report = svc.shutdown();

    assert_eq!(report.stats.worker_restarts, 1, "exactly one respawn");
    assert_eq!(
        report.stats.quarantined, 0,
        "a kill between arrivals has nothing in flight to quarantine"
    );
    assert_accounting(&report.stats);
    assert_exactly_once(&report.decisions);
    // The replayed engine reconstructs state bit-exactly: decisions match
    // the fault-free reference as if the crash never happened.
    assert_bit_identical(&by_shard(report.decisions), &reference_decisions(&items));
}

#[test]
fn poison_arrival_is_quarantined_and_round_trips_through_jsonl() {
    let items = stream(6);
    let mut load = [0usize; SHARDS];
    for item in &items {
        load[shard_of_key(item.key, SHARDS)] += 1;
    }
    let victim = (0..SHARDS).max_by_key(|&s| load[s]).unwrap();
    // The poison is the 4th message this shard dequeues == the 4th
    // submitted item routed to it (single producer, FIFO queue).
    let expected_poison = items
        .iter()
        .filter(|i| shard_of_key(i.key, SHARDS) == victim)
        .nth(3)
        .unwrap()
        .clone();
    let qpath = std::env::temp_dir().join(format!("kvec-quarantine-{}.jsonl", std::process::id()));
    let cfg = ServeConfig {
        quarantine_path: Some(qpath.clone()),
        ..no_shed_config(items.len())
    };
    let chaos = ServeChaos::new().poison_at(victim, 3);

    let svc = ShardedService::with_chaos(model(), cfg, chaos);
    for item in &items {
        assert!(svc.submit(item.clone()).is_admitted());
    }
    let report = svc.shutdown();

    assert_eq!(report.stats.worker_restarts, 1);
    assert_eq!(report.stats.quarantined, 1);
    assert_accounting(&report.stats);
    assert_eq!(report.quarantined.len(), 1);
    let rec = &report.quarantined[0];
    assert_eq!(rec.shard, victim);
    assert_eq!(rec.item, expected_poison, "wrong arrival quarantined");
    assert!(rec.error.contains("poison"), "panic message preserved");

    // The JSONL file is the replayable artifact: one line, decodes to the
    // same record.
    let text = std::fs::read_to_string(&qpath).expect("quarantine file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1);
    let decoded: QuarantineRecord = kvec_json::decode(lines[0]).expect("line decodes");
    assert_eq!(&decoded, rec);
    let _ = std::fs::remove_file(&qpath);

    // The poisoned key still decides (its other arrivals were fed); no
    // key decides twice; nothing is silently lost.
    assert_exactly_once(&report.decisions);
    assert_eq!(report.decisions.len(), unique_keys(&items).len());
}

#[test]
fn stalled_shard_sheds_under_pressure_and_accounting_balances() {
    let items = stream(6);
    // Tiny queues + a 300ms stall on shard 0's 3rd arrival: the backlog
    // behind the stall must shed, and the supervisor must notice the flat
    // heartbeat (wedge detection) without restarting a healthy worker.
    let cfg = ServeConfig {
        shards: SHARDS,
        queue_capacity: 8,
        delay_watermark: 2,
        shed_watermark: 4,
        confident_margin: 0.5,
        wedge_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let chaos = ServeChaos::new().stall_at(0, 2, 300);
    let svc = ShardedService::with_chaos(model(), cfg, chaos);
    let mut delayed = 0u64;
    for item in &items {
        if matches!(
            svc.submit(item.clone()),
            kvec_serve::Admission::Delayed { .. }
        ) {
            delayed += 1;
        }
    }
    let report = svc.shutdown();

    assert_accounting(&report.stats);
    assert!(
        report.stats.shed_total() > 0,
        "a stalled shard with capacity 8 must shed: {:?}",
        report.stats
    );
    assert_eq!(report.stats.delayed, delayed);
    assert_eq!(
        report.stats.worker_restarts, 0,
        "a stall is slow, not dead: no respawn"
    );
    assert!(
        report.stats.wedge_events >= 1,
        "the 300ms stall must trip the 50ms wedge detector"
    );
    assert_exactly_once(&report.decisions);
    // Every decided key was actually fed at least once.
    let fed_keys = unique_keys(&items);
    for d in &report.decisions {
        assert!(fed_keys.contains(&d.key));
    }
}

#[test]
fn deadline_storm_forces_early_decisions_for_longest_pending_keys() {
    let items = stream(8);
    let cfg = ServeConfig {
        deadline_ticks: Some(12),
        overload_deadline_ticks: Some(4),
        ..no_shed_config(items.len())
    };
    // Skew every shard's deadline clock forward: decisions must come even
    // earlier, and nothing may double-fire or leak.
    let mut chaos = ServeChaos::new();
    for s in 0..SHARDS {
        chaos = chaos.skew_deadline(s, 2);
    }
    let svc = ShardedService::with_chaos(model(), cfg, chaos);
    for item in &items {
        assert!(svc.submit(item.clone()).is_admitted());
    }
    let report = svc.shutdown();

    assert_accounting(&report.stats);
    assert!(
        report.stats.forced_halts > 0,
        "a 12-tick budget over tangled flows must force halts: {:?}",
        report.stats
    );
    assert_exactly_once(&report.decisions);
    assert_eq!(
        report.decisions.len(),
        unique_keys(&items).len(),
        "deadline enforcement must not lose keys"
    );
    // Forced keys decided strictly before their full sequence arrived:
    // earliness bought with the deadline budget.
    let mut seq_len: BTreeMap<Key, usize> = BTreeMap::new();
    for item in &items {
        *seq_len.entry(item.key).or_default() += 1;
    }
    let early = report
        .decisions
        .iter()
        .filter(|d| d.n_items < seq_len[&d.key])
        .count();
    assert!(early > 0, "some decisions must be early under deadlines");
}

#[test]
fn wall_clock_safety_net_decides_keys_whose_stream_goes_silent() {
    let items = stream(2);
    let head = &items[..40];
    let cfg = ServeConfig {
        wall_deadline: Some(Duration::from_millis(30)),
        ..no_shed_config(items.len())
    };
    let svc = ShardedService::start(model(), cfg);
    for item in head {
        assert!(svc.submit(item.clone()).is_admitted());
    }
    // The stream goes silent: only idle polls remain. Wall deadlines must
    // flush every pending key without any further arrivals.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = svc.stats();
        if stats.decisions as usize == unique_keys(head).len() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "wall deadline never flushed the silent keys: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = svc.shutdown();
    assert!(report.stats.forced_halts > 0, "{:?}", report.stats);
    assert_accounting(&report.stats);
    assert_exactly_once(&report.decisions);
}

#[test]
fn flow_end_forces_classification_through_the_queue() {
    let items = stream(4);
    let keys = unique_keys(&items);
    let svc = ShardedService::start(model(), no_shed_config(items.len()));
    for item in &items {
        assert!(svc.submit(item.clone()).is_admitted());
    }
    for &key in &keys {
        assert!(svc.submit_flow_end(key).is_admitted());
    }
    // All decisions must arrive from the flow ends alone — before
    // shutdown's finish() sweep.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut decisions = Vec::new();
    while decisions.len() < keys.len() {
        decisions.extend(svc.drain_decisions());
        assert!(
            std::time::Instant::now() < deadline,
            "flow ends must decide every key ({}/{})",
            decisions.len(),
            keys.len()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = svc.shutdown();
    assert!(report.decisions.is_empty(), "nothing left for finish()");
    assert_eq!(report.stats.flow_ends, keys.len() as u64);
    assert_eq!(report.stats.flow_ends_shed, 0);
    decisions.extend(report.decisions);
    assert_exactly_once(&decisions);
    assert_eq!(decisions.len(), keys.len());
    assert_accounting(&report.stats);
}

/// Overload soak: ≥100k arrivals hammered into tiny queues with tight
/// deadlines and confident-key shedding. The service must stay up
/// (no deadlock, no unbounded queues), account for every arrival, and
/// keep decision latency bounded. Ignored by default; CI runs it in
/// release as part of the serve leg:
///
/// ```text
/// cargo test --release -q --test serve_chaos -- --ignored
/// ```
#[test]
#[ignore = "long overload soak; run via the CI serve leg or --ignored"]
fn overload_soak_degrades_gracefully_over_100k_arrivals() {
    use kvec_obs::{self as obs, Config, Level, SinkConfig};

    let dcfg = traffic_cfg();
    let groups = 700;
    let mut all_items = Vec::new();
    let mut group_keys: Vec<Vec<Key>> = Vec::new();
    for g in 0..groups {
        let mut rng = KvecRng::seed_from_u64(9000 + g as u64);
        let pool = generate_traffic(&dcfg, &mut rng);
        let mut tangled = mixer::tangle_group(&pool, &mut rng);
        let offset = (g * dcfg.num_flows) as u64;
        let mut keys = Vec::new();
        for item in &mut tangled.items {
            item.key = Key(item.key.0 + offset);
            if !keys.contains(&item.key) {
                keys.push(item.key);
            }
        }
        group_keys.push(keys);
        all_items.push(tangled.items);
    }
    let total: usize = all_items.iter().map(Vec::len).sum();
    assert!(total >= 100_000, "soak stream too short: {total}");

    obs::configure(Config {
        enabled: true,
        level: Level::Warn,
        sink: SinkConfig::Memory,
    });
    obs::reset();

    let cfg = ServeConfig {
        shards: SHARDS,
        queue_capacity: 64,
        delay_watermark: 16,
        shed_watermark: 32,
        confident_margin: 0.3,
        deadline_ticks: Some(64),
        overload_deadline_ticks: Some(16),
        wall_deadline: Some(Duration::from_millis(250)),
        ..ServeConfig::default()
    };
    let svc = ShardedService::start(model(), cfg);
    let mut max_depth = 0usize;
    for (items, keys) in all_items.iter().zip(&group_keys) {
        for item in items {
            svc.submit(item.clone());
        }
        // Flow-end retirement, as upstream capture would signal FINs.
        for &key in keys {
            svc.submit_flow_end(key);
        }
        max_depth = max_depth.max(svc.queue_depth());
    }
    let report = svc.shutdown();

    assert_accounting(&report.stats);
    assert_eq!(report.stats.submitted, total as u64);
    assert!(
        max_depth <= SHARDS * 64,
        "queues breached their bound: {max_depth}"
    );
    assert!(
        report.stats.shed_total() > 0,
        "overload must shed: {:?}",
        report.stats
    );
    assert_exactly_once(&report.decisions);
    assert!(report.stats.worker_restarts == 0 && report.stats.quarantined == 0);

    // Bounded tail latency: graceful degradation means overload turns
    // into sheds and earlier decisions, never into unbounded waiting.
    let p = obs::metrics::histogram("serve.decision_latency_us").percentiles();
    assert!(
        p.p99.is_finite() && p.p99 < 10_000_000.0,
        "p99 decision latency unbounded: {p:?}"
    );
    obs::configure(Config {
        enabled: false,
        level: Level::Info,
        sink: SinkConfig::Stderr,
    });
}

/// Kill/replay with the flow tracer watching: the journal must preserve
/// *trace identity* across a crash — every replayed entry names the
/// trace id its arrival was admitted under — and the accounting identity
/// re-derived from trace records alone must agree number-for-number with
/// the service's own `ServeStats`.
///
/// The obs subscriber is process-global and tests run concurrently, so
/// this test gives its arrivals a disjoint key range and filters the
/// shared memory sink down to its own records before reconstructing.
#[test]
fn killed_worker_replay_preserves_trace_identity() {
    use kvec_json::Json;
    use kvec_obs::{self as obs, Config, Level, SinkConfig};
    use kvec_repro::flowtrace::FlowTraceReport;

    const KEY_OFFSET: u64 = 1_000_000;
    let mut items = stream(8);
    for item in &mut items {
        item.key = Key(item.key.0 + KEY_OFFSET);
    }
    let mut load = [0usize; SHARDS];
    for item in &items {
        load[shard_of_key(item.key, SHARDS)] += 1;
    }
    let victim = (0..SHARDS).max_by_key(|&s| load[s]).unwrap();
    assert!(load[victim] > 6, "victim shard must still have work to do");

    obs::configure(Config {
        enabled: true,
        level: Level::Debug,
        sink: SinkConfig::Memory,
    });
    let chaos = ServeChaos::new().kill_worker_at(victim, 5);
    let svc = ShardedService::with_chaos(model(), no_shed_config(items.len()), chaos);
    for item in &items {
        assert!(svc.submit(item.clone()).is_admitted());
    }
    let report = svc.shutdown();
    let lines = obs::take_lines();
    obs::configure(Config {
        enabled: false,
        level: Level::Info,
        sink: SinkConfig::Stderr,
    });
    assert_eq!(report.stats.worker_restarts, 1);

    // Keep only records about our disjoint key range (concurrent tests
    // share the sink while the subscriber is on).
    let ours: Vec<&str> = lines
        .iter()
        .map(String::as_str)
        .filter(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| j.get("fields").and_then(|f| f.get("key").cloned()).ok())
                .is_some_and(|k| matches!(k, Json::Int(v) if v >= KEY_OFFSET as i128))
        })
        .collect();

    // Trace-side accounting must agree with the service's own stats,
    // term by term — the trace is an audit of ServeStats, not a copy.
    let trace = FlowTraceReport::parse(ours.iter().copied());
    assert_eq!(trace.submitted, report.stats.submitted);
    assert_eq!(trace.shed, report.stats.shed_total());
    assert_eq!(trace.processed, report.stats.processed);
    assert_eq!(trace.late_drops, report.stats.late_drops);
    assert_eq!(trace.engine_rejected, report.stats.engine_rejected);
    assert_eq!(trace.quarantined, report.stats.quarantined);
    assert!(trace.identity_holds());
    assert_eq!(trace.decided.len() as u64, report.stats.decisions);

    // The respawned worker replayed its journal, and every replay record
    // carries the trace id the arrival was originally admitted under.
    assert!(trace.replays > 0, "a killed worker must replay its journal");
    let submit_ids: BTreeSet<u64> = ours
        .iter()
        .filter_map(|l| {
            let j = Json::parse(l).ok()?;
            if j.get("name").ok()? != &Json::Str("flow.submit".into()) {
                return None;
            }
            match j
                .get("fields")
                .and_then(|f| f.get("trace_id").cloned())
                .ok()?
            {
                Json::Int(v) => u64::try_from(v).ok(),
                _ => None,
            }
        })
        .collect();
    for id in &trace.replayed_ids {
        assert!(
            submit_ids.contains(id),
            "replayed trace id {id} was never admitted — identity lost across the crash"
        );
    }
}
