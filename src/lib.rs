//! # kvec-repro
//!
//! Umbrella crate for the KVEC reproduction. Re-exports every workspace
//! crate so examples and integration tests can depend on a single name.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod flowtrace;

pub use kvec;
pub use kvec_autograd as autograd;
pub use kvec_baselines as baselines;
pub use kvec_data as data;
pub use kvec_json as json;
pub use kvec_nn as nn;
pub use kvec_obs as obs;
pub use kvec_tensor as tensor;
