//! Reconstructs per-flow timelines from a traced serving run's JSONL
//! log: top-K stragglers with critical-path attribution, per-shard
//! queue-wait breakdowns, and the serve accounting identity re-verified
//! from trace records alone.
//!
//! ```text
//! cargo run --release -p kvec-repro --bin trace_report -- \
//!     [--top K] [--check] <serve.jsonl>
//! ```
//!
//! `--check` turns the report into a CI gate: exits non-zero unless the
//! accounting identity holds, at least one flow decided, and >= 99% of
//! decided flows have a complete admission -> queue -> service ->
//! decision span chain whose component latencies sum to the recorded
//! end-to-end latency.

use kvec_repro::flowtrace::FlowTraceReport;
use std::process::ExitCode;

/// `--check` passes when at least this fraction of decided flows is
/// fully reconstructable (crash/replay runs legitimately lose stamps for
/// the flows that were in flight when the worker died).
const CHECK_COMPLETE_FRACTION: f64 = 0.99;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.remove(i))
        .is_some();
    let top = args
        .iter()
        .position(|a| a == "--top")
        .map(|i| {
            args.remove(i);
            args.remove(i)
        })
        .map_or(10, |k| k.parse().expect("--top takes a number"));
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_report [--top K] [--check] <serve.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = FlowTraceReport::parse(text.lines());

    println!("== trace accounting (from flow.* records alone) ==");
    println!(
        "submitted {} == shed {} + processed {} + late_drops {} \
         + engine_rejected {} + quarantined {}  ->  {}",
        r.submitted,
        r.shed,
        r.processed,
        r.late_drops,
        r.engine_rejected,
        r.quarantined,
        if r.identity_holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "flow_ends {}, decisions {}, replays {} ({} distinct flows), \
         snapshots {}, slo burns {}, malformed {}",
        r.flow_ends,
        r.decided.len(),
        r.replays,
        r.replayed_ids.len(),
        r.snapshots,
        r.slo_burns,
        r.malformed
    );
    println!(
        "complete span chains: {:.1}% of {} decided flows",
        100.0 * r.complete_fraction(),
        r.decided.len()
    );

    println!("\n== per-shard queue wait ==");
    for (i, s) in r.shard_queue.iter().enumerate() {
        println!(
            "shard {i}: {} dequeues, mean {:.0}us, max {:.0}us",
            s.samples,
            s.mean_us(),
            s.max_us
        );
    }

    println!("\n== top {top} stragglers (by end-to-end latency) ==");
    for d in r.stragglers().into_iter().take(top) {
        let path_str = d
            .critical_path()
            .map_or("unknown".to_string(), |(name, us)| {
                format!("{name} {us:.0}us ({:.0}%)", 100.0 * us / d.e2e_us.max(1e-9))
            });
        println!(
            "flow {} key {} shard {} via {}{}: e2e {:.0}us \
             [admit {:.0} | queue {:.0} | service {:.0} | decide {:.0}] critical: {}",
            d.trace_id,
            d.key,
            d.shard,
            d.via,
            if d.forced { " (forced)" } else { "" },
            d.e2e_us,
            d.admit_us,
            d.queue_us,
            d.service_us,
            d.decide_us,
            path_str
        );
    }

    if check {
        let mut failures = Vec::new();
        if !r.identity_holds() {
            failures.push("accounting identity violated".to_string());
        }
        if r.decided.is_empty() {
            failures.push("no flow.decision records".to_string());
        }
        let frac = r.complete_fraction();
        if frac < CHECK_COMPLETE_FRACTION {
            failures.push(format!(
                "only {:.1}% of decided flows reconstruct completely \
                 (need >= {:.0}%)",
                100.0 * frac,
                100.0 * CHECK_COMPLETE_FRACTION
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("trace_report: FAIL: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("\ntrace_report: OK");
    }
    ExitCode::SUCCESS
}
