//! Load generator for the sharded serving runtime: regenerates
//! `BENCH_serving.json`.
//!
//! Measures the service's saturation throughput (arrivals offered as
//! fast as a producer can push them), then replays the same tangled
//! traffic at paced fractions of that rate (0.5×, 1×, 2×) and records
//! how the admission ladder, deadline enforcer, and decision latency
//! respond — the overload-degradation curve the serving layer promises:
//! sheds and earlier decisions instead of unbounded queues.
//!
//! ```text
//! cargo run --release -p kvec-repro --bin serve_load [-- --quick] [--out PATH]
//! ```
//!
//! With the observability env vars set (`KVEC_TRACE_FILE`,
//! `KVEC_METRICS_FILE`, ...) this doubles as the traced serving run that
//! `validate_trace --serve` gates in CI.

use kvec::{KvecConfig, KvecModel};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::{mixer, Item, Key};
use kvec_json::{Json, ToJson};
use kvec_obs as obs;
use kvec_obs::SloSpec;
use kvec_serve::{ServeConfig, ServeStats, ShardBreakdown, ShardedService};
use kvec_tensor::KvecRng;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

fn traffic_cfg() -> TrafficConfig {
    TrafficConfig {
        num_flows: 8,
        num_classes: 2,
        mean_len: 25,
        min_len: 20,
        max_len: 30,
        ..TrafficConfig::traffic_app(0)
    }
}

/// The tangled stream plus each group's key set (flow-ended when the
/// group has fully arrived, as upstream FINs would).
fn load_stream(groups: usize) -> (Vec<Item>, Vec<(usize, Vec<Key>)>) {
    let dcfg = traffic_cfg();
    let mut items = Vec::new();
    let mut group_ends = Vec::new();
    for g in 0..groups {
        let mut rng = KvecRng::seed_from_u64(3000 + g as u64);
        let pool = generate_traffic(&dcfg, &mut rng);
        let mut tangled = mixer::tangle_group(&pool, &mut rng);
        let offset = (g * dcfg.num_flows) as u64;
        let mut keys = Vec::new();
        for item in &mut tangled.items {
            item.key = Key(item.key.0 + offset);
            if !keys.contains(&item.key) {
                keys.push(item.key);
            }
        }
        items.extend(tangled.items);
        group_ends.push((items.len(), keys));
    }
    (items, group_ends)
}

fn model() -> KvecModel {
    let cfg = KvecConfig::tiny(&traffic_cfg().schema(), 2);
    KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(77))
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: SHARDS,
        queue_capacity: 256,
        delay_watermark: 64,
        shed_watermark: 128,
        confident_margin: 0.5,
        deadline_ticks: Some(64),
        overload_deadline_ticks: Some(16),
        wall_deadline: Some(Duration::from_millis(250)),
        // Tripwire budgets: the wall deadline bounds p99, and even the 2x
        // overload point should not shed everything. Violations surface
        // as warn-level slo.burn events in the trace, not failures.
        slo: Some(SloSpec {
            name: "serve_load",
            p99_latency_us: Some(250_000.0),
            max_shed_fraction: Some(0.9),
            max_forced_halt_fraction: None,
        }),
        ..ServeConfig::default()
    }
}

struct PointReport {
    label: String,
    offered_per_s: f64,
    elapsed_s: f64,
    stats: ServeStats,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    queue_wait: obs::Percentiles,
    service: obs::Percentiles,
    shards: Vec<ShardBreakdown>,
}

impl PointReport {
    fn to_json(&self) -> Json {
        let s = &self.stats;
        Json::obj([
            ("label", self.label.to_json()),
            ("offered_per_s", self.offered_per_s.to_json()),
            ("elapsed_s", self.elapsed_s.to_json()),
            ("submitted", s.submitted.to_json()),
            ("admitted", s.admitted.to_json()),
            ("delayed", s.delayed.to_json()),
            ("shed_queue_full", s.shed_queue_full.to_json()),
            ("shed_confident", s.shed_confident.to_json()),
            ("processed", s.processed.to_json()),
            ("late_drops", s.late_drops.to_json()),
            ("forced_halts", s.forced_halts.to_json()),
            ("decisions", s.decisions.to_json()),
            (
                "shed_fraction",
                (s.shed_total() as f64 / s.submitted.max(1) as f64).to_json(),
            ),
            ("decision_latency_p50_us", self.p50_us.to_json()),
            ("decision_latency_p95_us", self.p95_us.to_json()),
            ("decision_latency_p99_us", self.p99_us.to_json()),
            // Where the latency went: queue wait vs. worker service,
            // globally (percentiles) and per shard (exact means).
            ("queue_wait_p50_us", self.queue_wait.p50.to_json()),
            ("queue_wait_p99_us", self.queue_wait.p99.to_json()),
            ("service_p50_us", self.service.p50.to_json()),
            ("service_p99_us", self.service.p99.to_json()),
            (
                "shard_breakdown",
                Json::arr(self.shards.iter().map(ToJson::to_json)),
            ),
        ])
    }
}

/// Drives one run: submits every item (and each group's flow ends once
/// the group has fully arrived), pacing to `rate` arrivals/s when given
/// (`None` = as fast as possible). Returns the point report.
fn drive(
    label: &str,
    items: &[Item],
    group_ends: &[(usize, Vec<Key>)],
    rate: Option<f64>,
) -> PointReport {
    obs::metrics::reset_all();
    let _span = obs::span("serve.load_point");
    let svc = ShardedService::start(model(), serve_config());
    let t0 = Instant::now();
    let mut next_group = 0usize;
    for (pos, item) in items.iter().enumerate() {
        if let Some(r) = rate {
            let due = t0 + Duration::from_secs_f64(pos as f64 / r);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        svc.submit(item.clone());
        while next_group < group_ends.len() && pos + 1 == group_ends[next_group].0 {
            for &key in &group_ends[next_group].1 {
                svc.submit_flow_end(key);
            }
            next_group += 1;
        }
    }
    let report = svc.shutdown();
    let elapsed = t0.elapsed().as_secs_f64();
    let p = obs::metrics::histogram("serve.decision_latency_us").percentiles();
    let queue_wait = obs::metrics::histogram("serve.queue_wait_us").percentiles();
    let service = obs::metrics::histogram("serve.service_us").percentiles();
    let stats = report.stats;
    assert_eq!(
        stats.submitted,
        stats.arrivals_accounted(),
        "{label}: accounting identity violated"
    );
    println!(
        "{label}: {} arrivals in {elapsed:.2}s ({:.0}/s offered), \
         {} decisions, {} shed ({:.1}%), {} forced halts, p99 {:.0}us",
        stats.submitted,
        stats.submitted as f64 / elapsed,
        stats.decisions,
        stats.shed_total(),
        100.0 * stats.shed_total() as f64 / stats.submitted.max(1) as f64,
        stats.forced_halts,
        p.p99
    );
    PointReport {
        label: label.to_string(),
        offered_per_s: stats.submitted as f64 / elapsed,
        elapsed_s: elapsed,
        stats,
        p50_us: p.p50,
        p95_us: p.p95,
        p99_us: p.p99,
        queue_wait,
        service,
        shards: report.shards,
    }
}

fn main() {
    // Latency percentiles come from the obs histogram; when the run is
    // not being traced via the env vars, enable the in-memory sink so the
    // metrics still record (otherwise every percentile is NaN).
    if [
        "KVEC_LOG",
        "KVEC_TRACE_FILE",
        "KVEC_METRICS_FILE",
        "KVEC_CHROME_TRACE",
    ]
    .iter()
    .all(|v| std::env::var_os(v).is_none())
    {
        obs::configure(obs::Config {
            enabled: true,
            level: obs::Level::Info,
            sink: obs::SinkConfig::Memory,
        });
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let groups = if quick { 24 } else { 160 };
    let (items, group_ends) = load_stream(groups);
    println!(
        "stream: {} arrivals, {} groups x {} flows, {} shards",
        items.len(),
        groups,
        traffic_cfg().num_flows,
        SHARDS
    );

    // Saturation: offered as fast as the producer can push. The service
    // sheds what it cannot absorb; the *processed* rate is its capacity.
    let sat = drive("saturation", &items, &group_ends, None);
    let capacity_per_s = sat.stats.processed as f64 / sat.elapsed_s.max(1e-9);

    // Paced points around capacity: under, at, and 2x over.
    let mut points = Vec::new();
    for (label, factor) in [("load_0.5x", 0.5), ("load_1x", 1.0), ("load_2x", 2.0)] {
        let rate = (capacity_per_s * factor).max(1.0);
        points.push(drive(label, &items, &group_ends, Some(rate)));
    }

    let doc = Json::obj([
        (
            "generated_by",
            "cargo run --release -p kvec-repro --bin serve_load".to_json(),
        ),
        ("quick", quick.to_json()),
        (
            "stream",
            Json::obj([
                ("arrivals", items.len().to_json()),
                ("groups", groups.to_json()),
                ("flows_per_group", traffic_cfg().num_flows.to_json()),
                ("shards", SHARDS.to_json()),
            ]),
        ),
        ("saturation", sat.to_json()),
        ("estimated_capacity_per_s", capacity_per_s.to_json()),
        ("paced", Json::arr(points.iter().map(PointReport::to_json))),
    ]);
    std::fs::write(&out, doc.dump_pretty()).expect("write report");
    println!("wrote {out}");
    obs::finish();
}
