//! Validates the artifacts of a traced run (CI gate for the
//! observability layer).
//!
//! ```text
//! validate_trace [--serve] <run.jsonl> [<run.trace> [<metrics.json>]]
//! ```
//!
//! Every file must round-trip through `kvec-json`, and the JSONL log must
//! carry the records the observability layer promises for a training +
//! streaming run: per-epoch loss and gradient norm, the halt-step
//! histogram, the streaming active-key gauge, and per-phase kernel
//! timings. Watchdog events are validated structurally when present (a
//! healthy run has none). Exits non-zero with a message on the first
//! failure.
//!
//! `--serve` validates a *serving* run (e.g. `serve_load`) instead:
//! training records are not expected, and the summary must instead carry
//! the serving layer's overload-accounting instruments — the
//! `serve.queue_depth` gauge and the `serve.shed_total`,
//! `serve.forced_halts` and `serve.worker_restarts` counters — the
//! minimum operational evidence that backpressure, degradation, and
//! recovery are observable.

use kvec_json::Json;
use std::process::ExitCode;

/// What kind of run the artifacts are expected to describe.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Train,
    Serve,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_trace: FAIL: {msg}");
    ExitCode::FAILURE
}

/// The summary object checks shared by the `metrics.summary` JSONL event
/// and the standalone `KVEC_METRICS_FILE` export.
fn check_summary(summary: &Json, what: &str, mode: Mode) -> Result<(), String> {
    if mode == Mode::Serve {
        return check_serve_summary(summary, what);
    }
    let hist = summary
        .get("histograms")
        .and_then(|h| h.get("train.halt_step"))
        .map_err(|_| format!("{what}: no train.halt_step histogram"))?;
    let count = hist
        .get("count")
        .and_then(|c| c.as_f64())
        .map_err(|_| format!("{what}: train.halt_step has no count"))?;
    if count < 1.0 {
        return Err(format!("{what}: train.halt_step histogram is empty"));
    }
    let counters = summary
        .get("counters")
        .and_then(|c| c.as_obj())
        .map_err(|_| format!("{what}: no counters object"))?;
    if !counters.iter().any(|(k, _)| k.starts_with("kernel.matmul")) {
        return Err(format!("{what}: no kernel.matmul timing counters"));
    }
    // The streaming engine must publish its key-liveness gauge and the
    // bounded-memory pair (resident vs. evicted KV rows) on every run —
    // the operational evidence that cache memory is accounted for.
    for gauge in [
        "stream.active_keys",
        "stream.cache_rows",
        "stream.evicted_rows",
    ] {
        if summary.get("gauges").and_then(|g| g.get(gauge)).is_err() {
            return Err(format!("{what}: no {gauge} gauge"));
        }
    }
    Ok(())
}

/// A serving run must account for overload end to end: queue depth (the
/// backpressure signal), sheds (load dropped on purpose), forced halts
/// (latency bought with earliness), and worker restarts (recovery).
fn check_serve_summary(summary: &Json, what: &str) -> Result<(), String> {
    if summary
        .get("gauges")
        .and_then(|g| g.get("serve.queue_depth"))
        .is_err()
    {
        return Err(format!("{what}: no serve.queue_depth gauge"));
    }
    let counters = summary
        .get("counters")
        .and_then(|c| c.as_obj())
        .map_err(|_| format!("{what}: no counters object"))?;
    for counter in [
        "serve.shed_total",
        "serve.forced_halts",
        "serve.worker_restarts",
    ] {
        if !counters.iter().any(|(k, _)| k == counter) {
            return Err(format!("{what}: no {counter} counter"));
        }
    }
    let latency = summary
        .get("histograms")
        .and_then(|h| h.get("serve.decision_latency_us"))
        .map_err(|_| format!("{what}: no serve.decision_latency_us histogram"))?;
    let count = latency
        .get("count")
        .and_then(|c| c.as_f64())
        .map_err(|_| format!("{what}: serve.decision_latency_us has no count"))?;
    if count < 1.0 {
        return Err(format!(
            "{what}: serve.decision_latency_us is empty (no decisions recorded)"
        ));
    }
    Ok(())
}

fn check_jsonl(path: &str, mode: Mode) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut epochs = 0usize;
    let mut spans = 0usize;
    let mut summary_ok = false;
    // Serve-mode telemetry-plane evidence: the snapshot heartbeat stream
    // and at least one flow whose full span chain made it to the trace.
    let mut snapshots = 0usize;
    let mut stage_ids: [std::collections::BTreeSet<u64>; 3] = Default::default();
    let mut decision_ids: std::collections::BTreeSet<u64> = Default::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        let kind = rec
            .get("kind")
            .and_then(|k| k.as_str())
            .map_err(|_| format!("{path}:{}: record has no kind", i + 1))?
            .to_string();
        match kind.as_str() {
            "span" => {
                spans += 1;
                if rec.get("dur_us").and_then(|d| d.as_f64()).is_err() {
                    return Err(format!("{path}:{}: span without dur_us", i + 1));
                }
            }
            "event" => {
                let name = rec
                    .get("name")
                    .and_then(|n| n.as_str())
                    .map_err(|_| format!("{path}:{}: event without name", i + 1))?
                    .to_string();
                let fields = rec
                    .get("fields")
                    .map_err(|_| format!("{path}:{}: event without fields", i + 1))?;
                match name.as_str() {
                    "train.epoch" => {
                        epochs += 1;
                        for key in ["loss", "grad_norm_mean", "epoch"] {
                            if fields.get(key).is_err() {
                                return Err(format!("{path}:{}: train.epoch missing {key}", i + 1));
                            }
                        }
                    }
                    "train.watchdog" => {
                        for key in ["action", "step", "epoch"] {
                            if fields.get(key).is_err() {
                                return Err(format!(
                                    "{path}:{}: train.watchdog missing {key}",
                                    i + 1
                                ));
                            }
                        }
                    }
                    "metrics.summary" => {
                        let summary = fields
                            .get("summary")
                            .map_err(|_| format!("{path}:{}: summary event empty", i + 1))?;
                        check_summary(summary, path, mode)?;
                        summary_ok = true;
                    }
                    "telemetry.snapshot" => snapshots += 1,
                    "flow.submit" | "flow.queue" | "flow.service" | "flow.decision" => {
                        let id = fields
                            .get("trace_id")
                            .and_then(|t| t.as_f64())
                            .map_err(|_| format!("{path}:{}: {name} without trace_id", i + 1))?
                            as u64;
                        match name.as_str() {
                            "flow.submit" => stage_ids[0].insert(id),
                            "flow.queue" => stage_ids[1].insert(id),
                            "flow.service" => stage_ids[2].insert(id),
                            _ => decision_ids.insert(id),
                        };
                    }
                    _ => {}
                }
            }
            "gauge" => {}
            other => return Err(format!("{path}:{}: unknown kind {other}", i + 1)),
        }
    }
    if mode == Mode::Train && epochs == 0 {
        return Err(format!("{path}: no train.epoch events"));
    }
    if mode == Mode::Serve {
        if snapshots == 0 {
            return Err(format!("{path}: no telemetry.snapshot heartbeats"));
        }
        let complete = decision_ids
            .iter()
            .any(|id| stage_ids.iter().all(|s| s.contains(id)));
        if !complete {
            return Err(format!(
                "{path}: no complete flow span chain \
                 (submit -> queue -> service -> decision for one trace_id)"
            ));
        }
    }
    if spans == 0 {
        return Err(format!("{path}: no spans"));
    }
    if !summary_ok {
        return Err(format!(
            "{path}: no metrics.summary event (obs::finish not called?)"
        ));
    }
    println!("{path}: OK ({epochs} epochs, {spans} spans)");
    Ok(())
}

fn check_chrome(path: &str, mode: Mode) -> Result<(), String> {
    // The counter track that proves the run's key gauge made it into the
    // profile: key liveness for training runs, queue depth for serving.
    let want_track = match mode {
        Mode::Train => "stream.active_keys",
        Mode::Serve => "serve.queue_depth",
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .map_err(|_| format!("{path}: no traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }
    let mut complete = 0usize;
    let mut counters = 0usize;
    let mut saw_active_keys = false;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .map_err(|_| format!("{path}: event {i} has no ph"))?;
        match ph {
            "X" => {
                complete += 1;
                for key in ["name", "ts", "dur", "pid", "tid"] {
                    if ev.get(key).is_err() {
                        return Err(format!("{path}: X event {i} missing {key}"));
                    }
                }
            }
            "C" => {
                counters += 1;
                if ev.get("name").and_then(|n| n.as_str()).ok() == Some(want_track) {
                    saw_active_keys = true;
                }
            }
            "M" => {}
            other => return Err(format!("{path}: event {i} has unknown ph {other}")),
        }
    }
    if complete == 0 {
        return Err(format!("{path}: no complete (X) span events"));
    }
    if !saw_active_keys {
        return Err(format!("{path}: no {want_track} counter track"));
    }
    println!("{path}: OK ({complete} spans, {counters} counter samples)");
    Ok(())
}

fn check_metrics(path: &str, mode: Mode) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    check_summary(&doc, path, mode)?;
    println!("{path}: OK");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mode = if let Some(i) = args.iter().position(|a| a == "--serve") {
        args.remove(i);
        Mode::Serve
    } else {
        Mode::Train
    };
    if args.is_empty() || args.len() > 3 {
        eprintln!("usage: validate_trace [--serve] <run.jsonl> [<run.trace> [<metrics.json>]]");
        return ExitCode::FAILURE;
    }
    if let Err(e) = check_jsonl(&args[0], mode) {
        return fail(&e);
    }
    if let Some(trace) = args.get(1) {
        if let Err(e) = check_chrome(trace, mode) {
            return fail(&e);
        }
    }
    if let Some(metrics) = args.get(2) {
        if let Err(e) = check_metrics(metrics, mode) {
            return fail(&e);
        }
    }
    ExitCode::SUCCESS
}
