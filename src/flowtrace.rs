//! Offline reconstruction of flow timelines from a serving JSONL trace.
//!
//! The serving runtime emits one `flow.*` event per stage an arrival
//! passes through (see `kvec_obs::trace_ctx` for the vocabulary). This
//! module re-reads those records and rebuilds what the service knew only
//! transiently: each decided flow's admission → queue → service →
//! decision span chain with its component latencies, per-shard
//! queue-wait breakdowns, and — crucially — the serve accounting
//! identity re-derived *from trace records alone*, so the trace can be
//! audited against the service's own `ServeStats` without trusting
//! either side.
//!
//! Used by the `trace_report` bin and cross-checked by the chaos suite.

use kvec_json::Json;

/// One decided flow reconstructed from its `flow.decision` record and
/// the presence of its upstream span records.
#[derive(Debug, Clone)]
pub struct DecidedFlow {
    /// The deciding message's trace id.
    pub trace_id: u64,
    /// Flow key.
    pub key: u64,
    /// Shard that decided it.
    pub shard: usize,
    /// Deadline- or wall-clock-forced.
    pub forced: bool,
    /// Deciding path: `policy` / `flow_end` / `deadline` / `wall` /
    /// `finish` / `replay`.
    pub via: String,
    /// Component latencies, µs. NaN when the stage stamp was lost
    /// (shed upstream, or state replayed after a crash).
    pub admit_us: f64,
    /// Queue wait of the deciding message, µs.
    pub queue_us: f64,
    /// Service time of the deciding message, µs.
    pub service_us: f64,
    /// Decision overhead (deadline wait for forced halts), µs.
    pub decide_us: f64,
    /// End-to-end latency (submission to decision), µs.
    pub e2e_us: f64,
    /// All four upstream records (`flow.submit`, `flow.queue`,
    /// `flow.service`) were present for this trace id.
    pub chain_complete: bool,
    /// The four components are finite and sum to `e2e_us` within
    /// [`SUM_TOLERANCE_US`].
    pub components_sum_ok: bool,
}

impl DecidedFlow {
    /// The component that dominated this flow's end-to-end latency —
    /// its critical path. `None` when components are missing.
    pub fn critical_path(&self) -> Option<(&'static str, f64)> {
        let parts = [
            ("admission", self.admit_us),
            ("queue", self.queue_us),
            ("service", self.service_us),
            ("decide", self.decide_us),
        ];
        if parts.iter().any(|(_, v)| !v.is_finite()) {
            return None;
        }
        parts.into_iter().max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Component latencies must telescope to `e2e_us` exactly (they are
/// differences of consecutive stamps of one f64 clock, round-tripped
/// through shortest-representation JSON); 1µs of slack absorbs the
/// one-rounding-step cases.
pub const SUM_TOLERANCE_US: f64 = 1.0;

/// Per-shard queue-wait aggregation over `flow.queue` records.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardQueueStats {
    /// `flow.queue` records with a finite wait on this shard.
    pub samples: u64,
    /// Sum of those waits, µs.
    pub total_us: f64,
    /// Largest single wait, µs.
    pub max_us: f64,
}

impl ShardQueueStats {
    /// Mean queue wait, µs (NaN when no samples).
    pub fn mean_us(&self) -> f64 {
        if self.samples == 0 {
            f64::NAN
        } else {
            self.total_us / self.samples as f64
        }
    }
}

/// Everything reconstructed from one pass over a trace. Counts follow
/// the serve accounting vocabulary; item and flow-end messages are
/// tallied separately (the identity covers items only).
#[derive(Debug, Clone, Default)]
pub struct FlowTraceReport {
    /// `flow.submit` item records (any verdict).
    pub submitted: u64,
    /// Item submissions shed at admission (either rung).
    pub shed: u64,
    /// Item service records with outcome `fed` or `decided`.
    pub processed: u64,
    /// Item service records with outcome `late_drop`.
    pub late_drops: u64,
    /// Item service records with outcome `engine_rejected`.
    pub engine_rejected: u64,
    /// `flow.quarantine` records.
    pub quarantined: u64,
    /// `flow.replay` records (journal re-application after a crash).
    pub replays: u64,
    /// Trace ids named by at least one `flow.replay` record.
    pub replayed_ids: Vec<u64>,
    /// `flow.submit` flow-end records.
    pub flow_ends: u64,
    /// `telemetry.snapshot` heartbeats seen.
    pub snapshots: u64,
    /// `slo.burn` events seen.
    pub slo_burns: u64,
    /// Every decided flow, in trace order.
    pub decided: Vec<DecidedFlow>,
    /// Per-shard queue-wait stats (index = shard id).
    pub shard_queue: Vec<ShardQueueStats>,
    /// Lines that parsed as JSON but not as a recognized record shape.
    pub malformed: u64,
}

fn get_u64(j: &Json, k: &str) -> Option<u64> {
    match j.get(k).ok()? {
        Json::Int(v) => u64::try_from(*v).ok(),
        _ => None,
    }
}

fn get_f64(j: &Json, k: &str) -> f64 {
    match j.get(k) {
        Ok(Json::Float(v)) => *v,
        Ok(Json::Int(v)) => *v as f64,
        _ => f64::NAN, // null (lost stamp) or absent
    }
}

fn get_str<'a>(j: &'a Json, k: &str) -> Option<&'a str> {
    match j.get(k).ok()? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

impl FlowTraceReport {
    /// Parses a JSONL trace. Non-JSON lines and records without a
    /// `flow.*` / telemetry name are skipped (a trace interleaves many
    /// record kinds); structurally broken `flow.*` records count as
    /// `malformed` instead of silently vanishing.
    pub fn parse<'a>(lines: impl IntoIterator<Item = &'a str>) -> FlowTraceReport {
        let mut r = FlowTraceReport::default();
        // Stage presence per trace id, for chain completeness.
        let mut submit_ids = std::collections::BTreeSet::new();
        let mut queue_ids = std::collections::BTreeSet::new();
        let mut service_ids = std::collections::BTreeSet::new();
        let mut replayed = std::collections::BTreeSet::new();

        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(j) = Json::parse(line) else {
                continue;
            };
            let Ok(Json::Str(name)) = j.get("name") else {
                continue;
            };
            // Event payloads live under "fields" in the JSONL sink; fall
            // back to the record itself for flat (hand-written) fixtures.
            let j = j.get("fields").unwrap_or(&j);
            match name.as_str() {
                "telemetry.snapshot" => r.snapshots += 1,
                "slo.burn" => r.slo_burns += 1,
                "flow.submit" => {
                    let (Some(id), Some(msg), Some(verdict)) = (
                        get_u64(j, "trace_id"),
                        get_str(j, "msg"),
                        get_str(j, "verdict"),
                    ) else {
                        r.malformed += 1;
                        continue;
                    };
                    submit_ids.insert(id);
                    if msg == "item" {
                        r.submitted += 1;
                        if verdict.starts_with("shed") {
                            r.shed += 1;
                        }
                    } else {
                        r.flow_ends += 1;
                    }
                }
                "flow.queue" => {
                    let (Some(id), Some(shard)) = (get_u64(j, "trace_id"), get_u64(j, "shard"))
                    else {
                        r.malformed += 1;
                        continue;
                    };
                    queue_ids.insert(id);
                    let wait = get_f64(j, "queue_us");
                    if wait.is_finite() {
                        let shard = shard as usize;
                        if r.shard_queue.len() <= shard {
                            r.shard_queue.resize(shard + 1, ShardQueueStats::default());
                        }
                        let s = &mut r.shard_queue[shard];
                        s.samples += 1;
                        s.total_us += wait;
                        s.max_us = s.max_us.max(wait);
                    }
                }
                "flow.service" => {
                    let (Some(id), Some(msg), Some(outcome)) = (
                        get_u64(j, "trace_id"),
                        get_str(j, "msg"),
                        get_str(j, "outcome"),
                    ) else {
                        r.malformed += 1;
                        continue;
                    };
                    service_ids.insert(id);
                    if msg == "item" {
                        match outcome {
                            "fed" | "decided" => r.processed += 1,
                            "late_drop" => r.late_drops += 1,
                            "engine_rejected" => r.engine_rejected += 1,
                            _ => r.malformed += 1,
                        }
                    }
                }
                "flow.decision" => {
                    let (Some(id), Some(key), Some(shard), Some(via)) = (
                        get_u64(j, "trace_id"),
                        get_u64(j, "key"),
                        get_u64(j, "shard"),
                        get_str(j, "via"),
                    ) else {
                        r.malformed += 1;
                        continue;
                    };
                    let forced = matches!(j.get("forced"), Ok(Json::Bool(true)));
                    r.decided.push(DecidedFlow {
                        trace_id: id,
                        key,
                        shard: shard as usize,
                        forced,
                        via: via.to_string(),
                        admit_us: get_f64(j, "admit_us"),
                        queue_us: get_f64(j, "queue_us"),
                        service_us: get_f64(j, "service_us"),
                        decide_us: get_f64(j, "decide_us"),
                        e2e_us: get_f64(j, "e2e_us"),
                        chain_complete: false, // filled below
                        components_sum_ok: false,
                    });
                }
                "flow.replay" => {
                    let Some(id) = get_u64(j, "trace_id") else {
                        r.malformed += 1;
                        continue;
                    };
                    r.replays += 1;
                    replayed.insert(id);
                }
                "flow.quarantine" => r.quarantined += 1,
                _ => {}
            }
        }

        for d in &mut r.decided {
            d.chain_complete = submit_ids.contains(&d.trace_id)
                && queue_ids.contains(&d.trace_id)
                && service_ids.contains(&d.trace_id);
            let sum = d.admit_us + d.queue_us + d.service_us + d.decide_us;
            d.components_sum_ok = sum.is_finite()
                && d.e2e_us.is_finite()
                && (sum - d.e2e_us).abs() <= SUM_TOLERANCE_US;
        }
        r.replayed_ids = replayed.into_iter().collect();
        r
    }

    /// The serve accounting identity re-derived from trace records
    /// alone: `submitted == shed + processed + late_drops +
    /// engine_rejected + quarantined`.
    pub fn identity_holds(&self) -> bool {
        self.submitted
            == self.shed
                + self.processed
                + self.late_drops
                + self.engine_rejected
                + self.quarantined
    }

    /// Fraction of decided flows whose span chain is complete AND whose
    /// components sum to the recorded end-to-end latency (1.0 when no
    /// flows decided — vacuous, callers should also require a count).
    pub fn complete_fraction(&self) -> f64 {
        if self.decided.is_empty() {
            return 1.0;
        }
        let ok = self
            .decided
            .iter()
            .filter(|d| d.chain_complete && d.components_sum_ok)
            .count();
        ok as f64 / self.decided.len() as f64
    }

    /// Decided flows sorted by end-to-end latency, slowest first (flows
    /// with unknown e2e sort last).
    pub fn stragglers(&self) -> Vec<&DecidedFlow> {
        let mut v: Vec<&DecidedFlow> = self.decided.iter().collect();
        v.sort_by(|a, b| {
            let ka = if a.e2e_us.is_finite() {
                a.e2e_us
            } else {
                f64::NEG_INFINITY
            };
            let kb = if b.e2e_us.is_finite() {
                b.e2e_us
            } else {
                f64::NEG_INFINITY
            };
            kb.total_cmp(&ka)
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(ls: &[&str]) -> FlowTraceReport {
        FlowTraceReport::parse(ls.iter().copied())
    }

    #[test]
    fn reconstructs_a_complete_chain() {
        // Real sink shape: payload nested under "fields".
        let r = lines(&[
            r#"{"ts_us":1.0,"kind":"event","level":"debug","name":"flow.submit","tid":1,"fields":{"trace_id":1,"key":9,"shard":0,"msg":"item","verdict":"admitted","admit_us":2.0}}"#,
            r#"{"ts_us":2.0,"kind":"event","level":"debug","name":"flow.queue","tid":2,"fields":{"trace_id":1,"key":9,"shard":0,"msg":"item","queue_us":10.0}}"#,
            r#"{"ts_us":3.0,"kind":"event","level":"debug","name":"flow.service","tid":2,"fields":{"trace_id":1,"key":9,"shard":0,"msg":"item","outcome":"decided","service_us":5.0}}"#,
            r#"{"ts_us":4.0,"kind":"event","level":"debug","name":"flow.decision","tid":2,"fields":{"trace_id":1,"key":9,"shard":0,"forced":false,"via":"policy","pred":0,"n_items":3,"admit_us":2.0,"queue_us":10.0,"service_us":5.0,"decide_us":1.0,"e2e_us":18.0}}"#,
        ]);
        assert_eq!(r.submitted, 1);
        assert_eq!(r.processed, 1);
        assert!(r.identity_holds());
        assert_eq!(r.decided.len(), 1);
        let d = &r.decided[0];
        assert!(d.chain_complete && d.components_sum_ok);
        assert_eq!(d.critical_path(), Some(("queue", 10.0)));
        assert_eq!(r.complete_fraction(), 1.0);
    }

    #[test]
    fn shed_flows_end_at_submit_and_identity_still_holds() {
        let r = lines(&[
            r#"{"kind":"event","name":"flow.submit","trace_id":1,"key":1,"shard":0,"msg":"item","verdict":"shed_queue_full","admit_us":null}"#,
            r#"{"kind":"event","name":"flow.submit","trace_id":2,"key":2,"shard":0,"msg":"item","verdict":"shed_confident","admit_us":null}"#,
        ]);
        assert_eq!((r.submitted, r.shed), (2, 2));
        assert!(r.identity_holds());
        assert_eq!(r.decided.len(), 0);
    }

    #[test]
    fn null_components_break_sum_but_not_identity() {
        // A replay-derived decision: identity preserved, stamps lost.
        let r = lines(&[
            r#"{"kind":"event","name":"flow.replay","trace_id":7,"key":3,"shard":1,"entry":"item"}"#,
            r#"{"kind":"event","name":"flow.decision","trace_id":7,"key":3,"shard":1,"forced":false,"via":"replay","pred":1,"n_items":2,"admit_us":null,"queue_us":null,"service_us":null,"decide_us":null,"e2e_us":null}"#,
        ]);
        assert_eq!(r.replays, 1);
        assert_eq!(r.replayed_ids, vec![7]);
        let d = &r.decided[0];
        assert!(!d.components_sum_ok);
        assert!(d.critical_path().is_none());
    }

    #[test]
    fn flow_ends_are_tallied_apart_from_items() {
        let r = lines(&[
            r#"{"kind":"event","name":"flow.submit","trace_id":1,"key":1,"shard":0,"msg":"flow_end","verdict":"admitted","admit_us":1.0}"#,
        ]);
        assert_eq!((r.submitted, r.flow_ends), (0, 1));
    }

    #[test]
    fn stragglers_sort_slowest_first() {
        let r = lines(&[
            r#"{"kind":"event","name":"flow.decision","trace_id":1,"key":1,"shard":0,"forced":false,"via":"policy","pred":0,"n_items":1,"admit_us":1.0,"queue_us":1.0,"service_us":1.0,"decide_us":1.0,"e2e_us":4.0}"#,
            r#"{"kind":"event","name":"flow.decision","trace_id":2,"key":2,"shard":0,"forced":true,"via":"deadline","pred":0,"n_items":1,"admit_us":1.0,"queue_us":1.0,"service_us":1.0,"decide_us":96.0,"e2e_us":99.0}"#,
        ]);
        let s = r.stragglers();
        assert_eq!(s[0].trace_id, 2);
        assert_eq!(s[0].critical_path(), Some(("decide", 96.0)));
    }
}
