//! Model checkpointing: train, save weights, restore into a fresh process
//! (simulated here by a fresh model), and verify the restored model is the
//! same — including through the streaming inference engine.
//!
//! Run with: `cargo run --release --example checkpointing`

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel, StreamingEngine};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_tensor::KvecRng;

fn main() {
    let mut rng = KvecRng::seed_from_u64(19);
    let data_cfg = TrafficConfig::traffic_app(100).scaled_len(0.35);
    let pool = generate_traffic(&data_cfg, &mut rng);
    let ds = Dataset::from_pool(
        data_cfg.name,
        data_cfg.schema(),
        data_cfg.num_classes,
        pool,
        6,
        &mut rng,
    );

    let mut cfg = KvecConfig::for_schema(&ds.schema, ds.num_classes);
    cfg.d_model = 32;
    cfg.fusion_hidden = 32;
    cfg.d_ff = 64;
    let cfg = cfg.with_beta(0.1);

    // Train.
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    for _ in 0..12 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .expect("training failed");
    }
    let before = evaluate(&model, &ds.test);
    println!(
        "trained model : accuracy {:.3}, earliness {:.3}",
        before.accuracy, before.earliness
    );

    // Save.
    let path = std::env::temp_dir().join("kvec-example-checkpoint/weights.json");
    model.save_weights(&path).expect("save checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("checkpoint    : {} ({bytes} bytes)", path.display());

    // Restore into a model built from the same config (state-dict style).
    let mut restored = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(999));
    restored.load_weights(&path).expect("load checkpoint");
    let after = evaluate(&restored, &ds.test);
    println!(
        "restored model: accuracy {:.3}, earliness {:.3}",
        after.accuracy, after.earliness
    );
    assert_eq!(before.accuracy, after.accuracy, "restored model must match");
    assert_eq!(before.earliness, after.earliness);

    // The streaming engine sees identical decisions too.
    let orig = StreamingEngine::run(&model, &ds.test[0]);
    let rest = StreamingEngine::run(&restored, &ds.test[0]);
    assert_eq!(orig.len(), rest.len());
    for (a, b) in orig.iter().zip(&rest) {
        assert_eq!((a.key, a.pred, a.n_items), (b.key, b.pred, b.n_items));
    }
    println!("streaming decisions identical across the checkpoint round-trip");

    // --- crash and resume ---
    // Weights files capture the model only. A *trainer* checkpoint
    // captures the whole training trajectory (parameters, optimizer
    // moments, epoch/step counters, RNG state), so an interrupted run can
    // continue exactly where it stopped. Simulate a crash after 6 of 12
    // epochs and show the resumed run lands on the very same model.
    let ckpt = std::env::temp_dir().join("kvec-example-checkpoint/trainer.ckpt");
    let mut rng_a = KvecRng::seed_from_u64(23);
    let mut model_a = KvecModel::new(&cfg, &mut rng_a);
    let mut trainer_a = Trainer::new(&cfg, &model_a);
    for _ in 0..12 {
        trainer_a
            .train_epoch(&mut model_a, &ds.train, &mut rng_a)
            .expect("training failed");
    }

    let mut rng_b = KvecRng::seed_from_u64(23);
    let mut model_b = KvecModel::new(&cfg, &mut rng_b);
    let mut trainer_b = Trainer::new(&cfg, &model_b);
    for _ in 0..6 {
        trainer_b
            .train_epoch(&mut model_b, &ds.train, &mut rng_b)
            .expect("training failed");
    }
    trainer_b
        .save_checkpoint(&model_b, &rng_b, &ckpt)
        .expect("save trainer checkpoint");
    drop((trainer_b, model_b, rng_b)); // the "crash"

    let mut model_c = KvecModel::new(&cfg, &mut KvecRng::seed_from_u64(999));
    let (mut trainer_c, mut rng_c) =
        Trainer::resume(&cfg, &mut model_c, &ckpt).expect("resume trainer checkpoint");
    for _ in trainer_c.epochs_done()..12 {
        trainer_c
            .train_epoch(&mut model_c, &ds.train, &mut rng_c)
            .expect("training failed");
    }
    let resumed = evaluate(&model_c, &ds.test);
    println!(
        "resumed run   : accuracy {:.3}, earliness {:.3}",
        resumed.accuracy, resumed.earliness
    );
    for id in model_a.store.ids() {
        assert_eq!(
            model_a.store.value(id),
            model_c.store.value(id),
            "resumed run must be bit-identical to the uninterrupted one"
        );
    }
    println!("crash at epoch 6 + resume reproduces the 12-epoch run exactly");

    std::fs::remove_dir_all(ckpt.parent().unwrap()).ok();
}
