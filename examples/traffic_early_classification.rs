//! Traffic classification with live streaming inference — the paper's
//! motivating scenario: a router wants to know each flow's application
//! type after as few packets as possible.
//!
//! Trains KVEC on synthetic flows, then replays a held-out tangled packet
//! stream through the incremental [`kvec::StreamingEngine`], printing each
//! classification decision the moment the policy halts the flow.
//!
//! Run with: `cargo run --release --example traffic_early_classification`

use kvec::train::Trainer;
use kvec::{KvecConfig, KvecModel, StreamingEngine};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_tensor::KvecRng;

fn main() {
    let mut rng = KvecRng::seed_from_u64(7);

    let data_cfg = TrafficConfig::traffic_app(200).scaled_len(0.4);
    let pool = generate_traffic(&data_cfg, &mut rng);
    let ds = Dataset::from_pool_clustered(
        data_cfg.name,
        data_cfg.schema(),
        data_cfg.num_classes,
        pool,
        8,
        3,
        &mut rng,
    );

    let mut cfg = KvecConfig::for_schema(&ds.schema, ds.num_classes);
    cfg.d_model = 32;
    cfg.fusion_hidden = 32;
    cfg.d_ff = 64;
    let cfg = cfg.with_beta(0.05);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    print!("training");
    for _ in 0..25 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .expect("training failed");
        print!(".");
        use std::io::Write;
        std::io::stdout().flush().ok();
    }
    println!(" done");

    // Replay one held-out tangled stream packet by packet.
    let scenario = &ds.test[0];
    let labels = scenario.label_map();
    println!(
        "\nreplaying a tangled stream of {} packets from {} concurrent flows:\n",
        scenario.len(),
        scenario.num_keys()
    );

    let mut engine = StreamingEngine::new(&model);
    let mut correct = 0;
    let mut decided = 0;
    for (pos, item) in scenario.items.iter().enumerate() {
        if let Some(decision) = engine.feed(item).expect("live stream faulted") {
            let truth = labels[&decision.key];
            let verdict = if decision.pred == truth {
                "ok "
            } else {
                "MISS"
            };
            let confidence = decision.probs[decision.pred];
            println!(
                "packet {:>4}: flow {:>4} -> class {:>2} (conf {:.2}) after {:>2} packets [{verdict}]",
                pos, decision.key.0, decision.pred, confidence, decision.n_items
            );
            decided += 1;
            if decision.pred == truth {
                correct += 1;
            }
        }
    }
    for decision in engine.finish() {
        let truth = labels[&decision.key];
        let verdict = if decision.pred == truth {
            "ok "
        } else {
            "MISS"
        };
        println!(
            "stream end : flow {:>4} -> class {:>2} after {:>2} packets (forced) [{verdict}]",
            decision.key.0, decision.pred, decision.n_items
        );
        decided += 1;
        if decision.pred == truth {
            correct += 1;
        }
    }
    println!(
        "\n{} flows decided, {} correct ({:.0}%)",
        decided,
        correct,
        100.0 * correct as f32 / decided.max(1) as f32
    );
}
