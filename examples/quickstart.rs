//! Quickstart: generate a small tangled traffic dataset, train KVEC for a
//! few epochs, and evaluate early-classification quality.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! To watch the run through the observability layer (structured JSONL
//! trace, metrics summary, `chrome://tracing` profile):
//!
//! ```text
//! KVEC_LOG=debug KVEC_TRACE_FILE=run.jsonl \
//!   KVEC_METRICS_FILE=metrics.json KVEC_CHROME_TRACE=run.trace \
//!   cargo run --release --example quickstart
//! ```

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel, StreamingEngine};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_obs as obs;
use kvec_tensor::KvecRng;

fn main() {
    let seed = 42;
    let mut rng = KvecRng::seed_from_u64(seed);

    // 1. Data: 120 synthetic flows over 10 application classes, tangled
    //    into scenarios of 8 concurrent flows, split 8:1:1 by key.
    let data_cfg = TrafficConfig::traffic_app(200).scaled_len(0.4);
    let pool = generate_traffic(&data_cfg, &mut rng);
    // Clustered tangling: each scenario mixes flows from ~3 applications,
    // the temporal locality real captures show.
    let ds = Dataset::from_pool_clustered(
        data_cfg.name,
        data_cfg.schema(),
        data_cfg.num_classes,
        pool,
        8,
        3,
        &mut rng,
    );
    println!(
        "dataset: {} keys, {} items, {} classes",
        ds.total_keys(),
        ds.total_items(),
        ds.num_classes
    );

    // 2. Model: paper-shaped KVEC scaled for CPU (width 32, 2 blocks).
    let mut cfg = KvecConfig::for_schema(&ds.schema, ds.num_classes);
    cfg.d_model = 32;
    cfg.fusion_hidden = 32;
    cfg.d_ff = 64;
    let cfg = cfg.with_beta(0.1); // earliness-accuracy dial
    let mut model = KvecModel::new(&cfg, &mut rng);
    println!("model: {} trainable parameters", model.num_parameters());

    // 3. Train (Algorithm 1): joint CE + REINFORCE + lateness penalty.
    let mut trainer = Trainer::new(&cfg, &model);
    for epoch in 0..25 {
        let stats = trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .expect("training failed");
        if epoch % 5 == 4 {
            println!(
                "epoch {:>2}: loss {:.3}, train acc {:.3}, train earliness {:.3}",
                epoch + 1,
                stats.loss,
                stats.accuracy,
                stats.earliness
            );
        }
    }

    // 4. Evaluate on held-out keys.
    let report = evaluate(&model, &ds.test);
    println!();
    println!("test accuracy : {:.3}", report.accuracy);
    println!(
        "test earliness: {:.3} (fraction of each flow observed)",
        report.earliness
    );
    println!("macro F1      : {:.3}", report.f1);
    println!("harmonic mean : {:.3}", report.hm);

    // 5. Replay one held-out scenario through the incremental streaming
    //    engine — the deployment path (and the source of the
    //    `stream.active_keys` gauge in traces).
    let scenario = &ds.test[0];
    let mut engine = StreamingEngine::new(&model);
    let mut decided = 0usize;
    for item in &scenario.items {
        if engine
            .feed(item)
            .expect("fresh engine cannot fault")
            .is_some()
        {
            decided += 1;
        }
    }
    decided += engine.finish().len();
    println!(
        "streaming     : {decided} decisions over {} items ({} keys live at peak)",
        scenario.len(),
        engine.active_keys_high_water()
    );

    // Flush the observability layer: emits the metrics summary into the
    // JSONL trace and writes KVEC_METRICS_FILE / KVEC_CHROME_TRACE if set.
    obs::finish();
}
