//! E-commerce / recommendation user profiling — the paper's second
//! motivating scenario: infer a user's profile (here, a binary class) from
//! as few interaction records as possible, so new users get personalized
//! treatment quickly.
//!
//! Trains KVEC at two earliness settings on MovieLens-like rating
//! sequences and contrasts how many ratings each needs per user.
//!
//! Run with: `cargo run --release --example user_profiling`

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel};
use kvec_data::synth::{generate_movielens, MovieLensConfig};
use kvec_data::Dataset;
use kvec_tensor::KvecRng;

fn train_at_beta(ds: &Dataset, beta: f32, seed: u64) -> kvec::EvalReport {
    let mut rng = KvecRng::seed_from_u64(seed);
    let mut cfg = KvecConfig::for_schema(&ds.schema, ds.num_classes);
    cfg.d_model = 32;
    cfg.fusion_hidden = 32;
    cfg.d_ff = 64;
    let cfg = cfg.with_beta(beta);
    let mut model = KvecModel::new(&cfg, &mut rng);
    let mut trainer = Trainer::new(&cfg, &model);
    for _ in 0..15 {
        trainer
            .train_epoch(&mut model, &ds.train, &mut rng)
            .expect("training failed");
    }
    evaluate(&model, &ds.test)
}

fn main() {
    let mut rng = KvecRng::seed_from_u64(3);
    let data_cfg = MovieLensConfig::movielens_1m(120).scaled_len(0.25);
    let pool = generate_movielens(&data_cfg, &mut rng);
    let ds = Dataset::from_pool("movielens", data_cfg.schema(), 2, pool, 4, &mut rng);
    println!(
        "user pool: {} users, avg {:.0} ratings each\n",
        ds.total_keys(),
        ds.total_items() as f32 / ds.total_keys() as f32
    );

    for (label, beta) in [
        ("eager profiling (beta = 0.5)", 0.5f32),
        ("patient profiling (beta = 0.0)", 0.0),
    ] {
        let report = train_at_beta(&ds, beta, 11);
        println!("{label}:");
        println!("  accuracy  {:.3}", report.accuracy);
        println!("  earliness {:.3}", report.earliness);
        let mean_items: f32 = report.outcomes.iter().map(|o| o.n_k as f32).sum::<f32>()
            / report.outcomes.len().max(1) as f32;
        println!("  mean ratings observed per user: {mean_items:.1}");
        println!(
            "  harmonic mean (accuracy vs earliness): {:.3}\n",
            report.hm
        );
    }

    println!(
        "The eager profile classifies users from a handful of ratings; the \
         patient one waits for more evidence — the beta knob trades the two \
         off (paper Fig. 8b)."
    );
}
