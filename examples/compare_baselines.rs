//! Head-to-head comparison of KVEC and the paper's four baselines on one
//! dataset — a miniature of the Figures 3-7 experiment.
//!
//! Run with: `cargo run --release --example compare_baselines`

use kvec::train::Trainer;
use kvec::{evaluate, KvecConfig, KvecModel};
use kvec_baselines::{
    BaselineConfig, Earliest, EarlyClassifier, SrnConfidence, SrnEarliest, SrnFixed,
};
use kvec_data::synth::{generate_traffic, TrafficConfig};
use kvec_data::Dataset;
use kvec_tensor::KvecRng;

fn main() {
    let seed = 42;
    let epochs = 25;
    let mut rng = KvecRng::seed_from_u64(seed);
    let data_cfg = TrafficConfig::traffic_fg(240).scaled_len(0.4);
    let pool = generate_traffic(&data_cfg, &mut rng);
    let ds = Dataset::from_pool_clustered(
        data_cfg.name,
        data_cfg.schema(),
        data_cfg.num_classes,
        pool,
        8,
        3,
        &mut rng,
    );
    println!(
        "dataset {}: {} keys, {} classes; {epochs} epochs per method\n",
        ds.name,
        ds.total_keys(),
        ds.num_classes
    );
    println!(
        "{:<16} {:>10} {:>9} {:>8}",
        "method", "earliness", "accuracy", "hm"
    );

    // KVEC.
    {
        let mut rng = KvecRng::seed_from_u64(seed);
        let mut cfg = KvecConfig::for_schema(&ds.schema, ds.num_classes);
        cfg.d_model = 32;
        cfg.fusion_hidden = 32;
        cfg.d_ff = 64;
        let cfg = cfg.with_beta(0.1);
        let mut model = KvecModel::new(&cfg, &mut rng);
        let mut trainer = Trainer::new(&cfg, &model);
        for _ in 0..epochs {
            trainer
                .train_epoch(&mut model, &ds.train, &mut rng)
                .expect("training failed");
        }
        let r = evaluate(&model, &ds.test);
        println!(
            "{:<16} {:>10.3} {:>9.3} {:>8.3}",
            "KVEC", r.earliness, r.accuracy, r.hm
        );
    }

    // The four baselines, through the shared trait.
    let mut bcfg = BaselineConfig::for_schema(&ds.schema, ds.num_classes);
    bcfg.d_model = 32;
    bcfg.d_ff = 64;
    let mut methods: Vec<Box<dyn EarlyClassifier>> = {
        let mut rng = KvecRng::seed_from_u64(seed);
        vec![
            Box::new(Earliest::new(&bcfg.clone().with_lambda(0.1), &mut rng)),
            Box::new(SrnEarliest::new(&bcfg.clone().with_lambda(0.1), &mut rng)),
            Box::new(SrnFixed::new(&bcfg.clone().with_tau(4), &mut rng)),
            Box::new(SrnConfidence::new(&bcfg.clone().with_mu(0.9), &mut rng)),
        ]
    };
    for method in &mut methods {
        let mut rng = KvecRng::seed_from_u64(seed);
        for _ in 0..epochs {
            method.train_epoch(&ds.train, &mut rng);
        }
        let r = method.evaluate(&ds.test);
        println!(
            "{:<16} {:>10.3} {:>9.3} {:>8.3}",
            method.name(),
            r.earliness,
            r.accuracy,
            r.hm
        );
    }

    println!(
        "\nKVEC's cross-sequence correlations buy accuracy at low earliness; \
         run `cargo run --release -p kvec-bench --bin fig3_6_performance` \
         for the full sweep."
    );
}
