#!/bin/bash
set -u
cd /root/repo
BIN=target/release
for exp in table1_stats fig8_sensitivity fig9_ablation fig10_attention fig11_halting fig12_concurrency; do
  echo "=== $exp starting $(date +%T) ==="
  $BIN/$exp > results/$exp.txt 2>results/$exp.err
  echo "=== $exp done $(date +%T) (exit $?) ==="
done
echo "=== fig3_6 starting $(date +%T) ==="
$BIN/fig3_6_performance --epochs 25 > results/fig3_6_performance.txt 2>results/fig3_6_performance.err
echo "=== fig3_6 done $(date +%T) ==="
$BIN/fig7_hm --epochs 25 > results/fig7_hm.txt 2>results/fig7_hm.err
echo "=== fig7 done $(date +%T) ==="
echo ALL_EXPERIMENTS_DONE_V2
