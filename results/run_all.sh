#!/bin/bash
# Runs every experiment binary sequentially, teeing into results/.
set -u
cd /root/repo
BIN=target/release
for exp in table1_stats fig8_sensitivity fig9_ablation fig10_attention fig11_halting fig12_concurrency fig3_6_performance fig7_hm; do
  echo "=== $exp starting $(date +%T) ==="
  $BIN/$exp > results/$exp.txt 2>results/$exp.err
  echo "=== $exp done $(date +%T) (exit $?) ==="
done
echo ALL_EXPERIMENTS_DONE
